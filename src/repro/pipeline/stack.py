"""Volume assembly and the cross-section → planar point-of-view change.

After denoising and alignment, the slice stack becomes a 3-D intensity
volume: axis 0 = x (within-slice), axis 1 = y (slice index × thickness),
axis 2 = z (depth).  "Changing the point of view" (§IV-C) is then just
re-slicing the volume along z: a planar view of one IC layer is the
aggregation of the volume over that layer's z-range — Fig 7d.

A small-angle rotation correction is included because the paper reports a
final volume rotation step to fix residual misalignment.

This module also hosts the per-slice **quality-control metrics** the
campaign runtime gates acquisitions on (:func:`slice_quality`,
:func:`qc_stack`): focus/sharpness, intensity spread, saturation and
blackout fractions, and the per-slice drift step.  Real FIB/SEM runs lose
slices to detector dropouts, charging and stage jumps; the QC gate is how
the runtime notices a ruined slice early enough to re-acquire instead of
feeding it to the (much more expensive) downstream stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np
from scipy import ndimage

from repro.errors import PipelineError
from repro.imaging.voxel import LAYER_Z_RANGES
from repro.layout.elements import Layer
from repro.obs import get_logger, kernel_scope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.pipeline.config import ShardPlan

logger = get_logger("repro.pipeline.stack")


@dataclass
class AlignedVolume:
    """An intensity volume reconstructed from an aligned slice stack."""

    data: np.ndarray  # float32, (nx, n_slices, nz)
    pixel_nm: float
    slice_thickness_nm: float
    origin_x_nm: float = 0.0
    origin_y_nm: float = 0.0

    @property
    def shape(self) -> tuple[int, int, int]:
        """(nx, ny, nz)."""
        return tuple(self.data.shape)  # type: ignore[return-value]

    def planar_view(self, layer: Layer) -> np.ndarray:
        """Mean-intensity planar image of *layer*'s z-range, shape (nx, ny).

        Mean (not max) aggregation: noise averages out across the layer's
        depth, which is why the planar views are so much cleaner than the
        individual cross-sections.
        """
        z0, z1 = LAYER_Z_RANGES[layer]
        k0 = int(z0 / self.pixel_nm)
        k1 = max(k0 + 1, int(np.ceil(z1 / self.pixel_nm)))
        k1 = min(k1, self.data.shape[2])
        if k0 >= self.data.shape[2]:
            raise PipelineError(f"layer {layer.name} lies above the imaged stack")
        return self.data[:, :, k0:k1].mean(axis=2)

    def cross_section(self, slice_index: int) -> np.ndarray:
        """One aligned x–z cross-section."""
        return self.data[:, slice_index, :]

    def estimated_tilt_deg(self) -> float:
        """Estimate residual rotation of the volume about the z axis.

        Fits the orientation of the strongest planar-intensity gradients on
        the METAL1 view; near 0° for a well-aligned stack, and the value to
        feed :meth:`rotated` to correct a tilted one.
        """
        view = self.planar_view(Layer.METAL1)
        gx = np.gradient(view, axis=0)
        gy = np.gradient(view, axis=1)
        weight = gx * gx + gy * gy
        if weight.sum() == 0:
            return 0.0
        # Structure-tensor principal direction.
        jxx = float((gx * gx).sum())
        jyy = float((gy * gy).sum())
        jxy = float((gx * gy).sum())
        angle = 0.5 * np.arctan2(2 * jxy, jxx - jyy)
        # Dominant edges of the SA region are axis-aligned: the deviation of
        # the principal gradient direction from the nearest axis is the tilt.
        deg = np.degrees(angle)
        while deg > 45.0:
            deg -= 90.0
        while deg < -45.0:
            deg += 90.0
        return float(deg)

    def rotated(self, angle_deg: float) -> "AlignedVolume":
        """Return a copy rotated about the z axis by *angle_deg*."""
        rotated = ndimage.rotate(
            self.data, angle_deg, axes=(0, 1), reshape=False, order=1, mode="nearest"
        )
        return AlignedVolume(
            data=rotated.astype(np.float32),
            pixel_nm=self.pixel_nm,
            slice_thickness_nm=self.slice_thickness_nm,
            origin_x_nm=self.origin_x_nm,
            origin_y_nm=self.origin_y_nm,
        )


def assemble_volume(
    images: list[np.ndarray],
    pixel_nm: float,
    slice_thickness_nm: float,
    origin_x_nm: float = 0.0,
    origin_y_nm: float = 0.0,
) -> AlignedVolume:
    """Stack aligned cross-sections into an :class:`AlignedVolume`.

    When slices are thicker than the pixel size, each slice is repeated to
    keep the volume (approximately) isotropic so planar coordinates remain
    metric.
    """
    if not images:
        raise PipelineError("cannot assemble an empty stack")
    shapes = {img.shape for img in images}
    if len(shapes) != 1:
        raise PipelineError(f"inconsistent slice shapes: {shapes}")
    with kernel_scope(
        "assemble_volume",
        pixels=sum(int(img.size) for img in images),
        slices=len(images),
    ):
        repeat = max(1, int(round(slice_thickness_nm / pixel_nm)))
        stack = np.stack(images, axis=1).astype(np.float32)
        if repeat > 1:
            stack = np.repeat(stack, repeat, axis=1)
        return AlignedVolume(
            data=stack,
            pixel_nm=pixel_nm,
            slice_thickness_nm=slice_thickness_nm,
            origin_x_nm=origin_x_nm,
            origin_y_nm=origin_y_nm,
        )


def planar_views(volume: AlignedVolume, layers: tuple[Layer, ...] | None = None) -> dict[Layer, np.ndarray]:
    """Planar views for the requested layers (default: all of them)."""
    layers = layers or tuple(Layer)
    return {layer: volume.planar_view(layer) for layer in layers}


# ---------------------------------------------------------------------------
# Slice quality control.  The metrics are deliberately cheap (one pass over
# each slice) because they run on *every* acquisition, faulted or not, when
# a campaign enables the QC gate.


@dataclass(frozen=True)
class QcThresholds:
    """Per-slice quality gates for an acquired stack.

    Defaults are calibrated to pass the clean synthetic acquisitions
    (shot noise keeps ``sharpness`` high and both clip fractions modest)
    while catching every injected fault class:

    * dropped / blacked-out frames → ``min_intensity_spread`` and
      ``max_blackout_fraction``;
    * detector saturation → ``max_saturation_fraction``;
    * defocus (blur bursts) → ``min_sharpness`` (high-frequency energy
      collapses when the noise and wire edges smear);
    * drift spikes → ``max_drift_step_px`` on the per-slice drift *step*
      (simulator ground truth — the stand-in for an online stage encoder).

    Set a field to ``None`` to disable that gate.
    """

    #: floor on high-frequency energy, mean((img - 3x3 mean)^2)
    min_sharpness: float | None = 2e-5
    #: floor on the global intensity standard deviation
    min_intensity_spread: float | None = 0.02
    #: ceiling on the fraction of pixels at the white clip level
    max_saturation_fraction: float | None = 0.55
    #: ceiling on the fraction of pixels at the black clip level
    max_blackout_fraction: float | None = 0.90
    #: ceiling on the per-slice drift increment, px (None → no drift gate)
    max_drift_step_px: float | None = 6.0

    def __post_init__(self) -> None:
        for name in ("min_sharpness", "min_intensity_spread",
                     "max_saturation_fraction", "max_blackout_fraction",
                     "max_drift_step_px"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise PipelineError(f"QC threshold {name} must be >= 0 (or None)")


def slice_quality(image: np.ndarray) -> dict[str, float]:
    """Cheap quality metrics for one acquired cross-section.

    ``sharpness`` is the mean squared 3×3 high-pass response — dominated
    by shot noise on a healthy frame, collapsing under defocus or a dead
    detector.  ``spread`` is the global intensity std.  The clip fractions
    count pixels pinned at the detector's black / white rails.
    """
    if image.ndim != 2:
        raise PipelineError("slice_quality expects a 2-D image")
    img = image.astype(np.float64, copy=False)
    highpass = img - ndimage.uniform_filter(img, size=3, mode="nearest")
    return {
        "sharpness": float(np.mean(highpass * highpass)),
        "spread": float(np.std(img)),
        "saturation_fraction": float(np.mean(img >= 0.98)),
        "blackout_fraction": float(np.mean(img <= 0.02)),
    }


@dataclass(frozen=True)
class SliceQc:
    """QC verdict for one slice: its metrics and the gates it failed."""

    index: int
    metrics: dict[str, float]
    failures: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class StackQc:
    """QC verdict for a whole acquired stack."""

    slices: tuple[SliceQc, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        return all(s.passed for s in self.slices)

    @property
    def failed_indices(self) -> tuple[int, ...]:
        return tuple(s.index for s in self.slices if not s.passed)

    @property
    def failure_kinds(self) -> tuple[str, ...]:
        kinds: list[str] = []
        for s in self.slices:
            for f in s.failures:
                if f not in kinds:
                    kinds.append(f)
        return tuple(kinds)


def _quality_shard(images: list[np.ndarray]) -> list[dict[str, float]]:
    """Metrics for one slice batch (runs in shard workers; pure per slice)."""
    return [slice_quality(img) for img in images]


def qc_stack(
    images: list[np.ndarray],
    thresholds: QcThresholds | None = None,
    true_drift_px: list[tuple[int, int]] | None = None,
    shard: "ShardPlan | None" = None,
    precomputed: list[dict[str, float]] | None = None,
) -> StackQc:
    """Gate every slice of an acquired stack against *thresholds*.

    ``true_drift_px`` (the simulator's per-slice ground truth, or any
    online drift estimate) enables the drift-step gate: a slice fails when
    the drift *increment* from its predecessor exceeds
    ``max_drift_step_px`` — the signature of a stage jump, which MI
    alignment with a bounded search window cannot recover from.

    ``shard`` (a :class:`repro.pipeline.config.ShardPlan`) parallelises
    the metric computation (the :func:`slice_quality` filter pass, the
    expensive part) across slice batches; the threshold gating — which
    carries the sequential drift-step state — stays in this process.
    Verdicts are identical for every shard configuration.

    ``precomputed`` supplies per-slice metric dicts computed elsewhere —
    the fused acquire pool trip (see
    :class:`repro.imaging.fib.FusedSliceWork`) runs :func:`slice_quality`
    next to the imaging so the filter pass here can be skipped entirely.
    Ignored unless it covers every slice; the metrics come from the same
    function either way, so verdicts are identical.
    """
    t = thresholds or QcThresholds()
    with kernel_scope(
        "qc_stack",
        pixels=sum(int(img.size) for img in images),
        slices=len(images),
    ) as scope:
        if precomputed is not None and len(precomputed) == len(images):
            metrics_list = precomputed
        elif shard is not None and shard.engaged(len(images)):
            from repro.runtime.shard import shard_map

            metrics_list = shard_map("qc", _quality_shard, images, shard)
        else:
            metrics_list = _quality_shard(images)
        verdicts: list[SliceQc] = []
        prev = (0, 0)
        for i, metrics in enumerate(metrics_list):
            failures: list[str] = []
            if t.min_sharpness is not None and metrics["sharpness"] < t.min_sharpness:
                failures.append("sharpness")
            if t.min_intensity_spread is not None and metrics["spread"] < t.min_intensity_spread:
                failures.append("spread")
            if (t.max_saturation_fraction is not None
                    and metrics["saturation_fraction"] > t.max_saturation_fraction):
                failures.append("saturation")
            if (t.max_blackout_fraction is not None
                    and metrics["blackout_fraction"] > t.max_blackout_fraction):
                failures.append("blackout")
            if true_drift_px is not None and t.max_drift_step_px is not None and i < len(true_drift_px):
                dx, dz = true_drift_px[i]
                step = max(abs(dx - prev[0]), abs(dz - prev[1]))
                metrics["drift_step_px"] = float(step)
                if step > t.max_drift_step_px:
                    failures.append("drift_step")
                prev = (dx, dz)
            if failures:
                logger.debug(
                    "slice failed QC",
                    extra={"fields": {"slice": i, "failures": failures}},
                )
            verdicts.append(SliceQc(index=i, metrics=metrics, failures=tuple(failures)))
        result = StackQc(slices=tuple(verdicts))
        scope.set(failed_slices=len(result.failed_indices))
        return result
