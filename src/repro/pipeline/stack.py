"""Volume assembly and the cross-section → planar point-of-view change.

After denoising and alignment, the slice stack becomes a 3-D intensity
volume: axis 0 = x (within-slice), axis 1 = y (slice index × thickness),
axis 2 = z (depth).  "Changing the point of view" (§IV-C) is then just
re-slicing the volume along z: a planar view of one IC layer is the
aggregation of the volume over that layer's z-range — Fig 7d.

A small-angle rotation correction is included because the paper reports a
final volume rotation step to fix residual misalignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.errors import PipelineError
from repro.imaging.voxel import LAYER_Z_RANGES
from repro.layout.elements import Layer


@dataclass
class AlignedVolume:
    """An intensity volume reconstructed from an aligned slice stack."""

    data: np.ndarray  # float32, (nx, n_slices, nz)
    pixel_nm: float
    slice_thickness_nm: float
    origin_x_nm: float = 0.0
    origin_y_nm: float = 0.0

    @property
    def shape(self) -> tuple[int, int, int]:
        """(nx, ny, nz)."""
        return tuple(self.data.shape)  # type: ignore[return-value]

    def planar_view(self, layer: Layer) -> np.ndarray:
        """Mean-intensity planar image of *layer*'s z-range, shape (nx, ny).

        Mean (not max) aggregation: noise averages out across the layer's
        depth, which is why the planar views are so much cleaner than the
        individual cross-sections.
        """
        z0, z1 = LAYER_Z_RANGES[layer]
        k0 = int(z0 / self.pixel_nm)
        k1 = max(k0 + 1, int(np.ceil(z1 / self.pixel_nm)))
        k1 = min(k1, self.data.shape[2])
        if k0 >= self.data.shape[2]:
            raise PipelineError(f"layer {layer.name} lies above the imaged stack")
        return self.data[:, :, k0:k1].mean(axis=2)

    def cross_section(self, slice_index: int) -> np.ndarray:
        """One aligned x–z cross-section."""
        return self.data[:, slice_index, :]

    def estimated_tilt_deg(self) -> float:
        """Estimate residual rotation of the volume about the z axis.

        Fits the orientation of the strongest planar-intensity gradients on
        the METAL1 view; near 0° for a well-aligned stack, and the value to
        feed :meth:`rotated` to correct a tilted one.
        """
        view = self.planar_view(Layer.METAL1)
        gx = np.gradient(view, axis=0)
        gy = np.gradient(view, axis=1)
        weight = gx * gx + gy * gy
        if weight.sum() == 0:
            return 0.0
        # Structure-tensor principal direction.
        jxx = float((gx * gx).sum())
        jyy = float((gy * gy).sum())
        jxy = float((gx * gy).sum())
        angle = 0.5 * np.arctan2(2 * jxy, jxx - jyy)
        # Dominant edges of the SA region are axis-aligned: the deviation of
        # the principal gradient direction from the nearest axis is the tilt.
        deg = np.degrees(angle)
        while deg > 45.0:
            deg -= 90.0
        while deg < -45.0:
            deg += 90.0
        return float(deg)

    def rotated(self, angle_deg: float) -> "AlignedVolume":
        """Return a copy rotated about the z axis by *angle_deg*."""
        rotated = ndimage.rotate(
            self.data, angle_deg, axes=(0, 1), reshape=False, order=1, mode="nearest"
        )
        return AlignedVolume(
            data=rotated.astype(np.float32),
            pixel_nm=self.pixel_nm,
            slice_thickness_nm=self.slice_thickness_nm,
            origin_x_nm=self.origin_x_nm,
            origin_y_nm=self.origin_y_nm,
        )


def assemble_volume(
    images: list[np.ndarray],
    pixel_nm: float,
    slice_thickness_nm: float,
    origin_x_nm: float = 0.0,
    origin_y_nm: float = 0.0,
) -> AlignedVolume:
    """Stack aligned cross-sections into an :class:`AlignedVolume`.

    When slices are thicker than the pixel size, each slice is repeated to
    keep the volume (approximately) isotropic so planar coordinates remain
    metric.
    """
    if not images:
        raise PipelineError("cannot assemble an empty stack")
    shapes = {img.shape for img in images}
    if len(shapes) != 1:
        raise PipelineError(f"inconsistent slice shapes: {shapes}")
    repeat = max(1, int(round(slice_thickness_nm / pixel_nm)))
    stack = np.stack(images, axis=1).astype(np.float32)
    if repeat > 1:
        stack = np.repeat(stack, repeat, axis=1)
    return AlignedVolume(
        data=stack,
        pixel_nm=pixel_nm,
        slice_thickness_nm=slice_thickness_nm,
        origin_x_nm=origin_x_nm,
        origin_y_nm=origin_y_nm,
    )


def planar_views(volume: AlignedVolume, layers: tuple[Layer, ...] | None = None) -> dict[Layer, np.ndarray]:
    """Planar views for the requested layers (default: all of them)."""
    layers = layers or tuple(Layer)
    return {layer: volume.planar_view(layer) for layer in layers}
