"""Image post-processing pipeline (§IV-C).

The paper's Dragonfly workflow, reimplemented from the primary sources it
cites: total-variation denoising by Chambolle's projection algorithm [11]
and by the split-Bregman method [27], mutual-information slice-to-slice
alignment, and the cross-section → planar point-of-view change.  This is
the part of HiFi-DRAM that is fully reproducible in software; everything
upstream of it is simulated (see DESIGN.md).
"""

from repro.pipeline.config import (
    PipelineConfig,
    ShardPlan,
    Stage,
    DenoiseStage,
    AlignStage,
    AssembleStage,
    PlanarViewStage,
    SegmentStage,
)
from repro.pipeline.denoise import chambolle_tv, split_bregman_tv, denoise_stack
from repro.pipeline.register import (
    mutual_information,
    align_pair,
    align_stack,
    AlignmentReport,
)
from repro.pipeline.stack import AlignedVolume, assemble_volume, planar_views
from repro.pipeline.segment import otsu_threshold, multi_otsu, segment_materials

__all__ = [
    "PipelineConfig",
    "ShardPlan",
    "Stage",
    "DenoiseStage",
    "AlignStage",
    "AssembleStage",
    "PlanarViewStage",
    "SegmentStage",
    "chambolle_tv",
    "split_bregman_tv",
    "denoise_stack",
    "mutual_information",
    "align_pair",
    "align_stack",
    "AlignmentReport",
    "AlignedVolume",
    "assemble_volume",
    "planar_views",
    "otsu_threshold",
    "multi_otsu",
    "segment_materials",
]
