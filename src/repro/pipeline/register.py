"""Slice-to-slice alignment by mutual information.

§IV-C: "we align the slices using the mutual-information algorithm of
Dragonfly.  In particular, each slide is aligned with respect to the
previous one."  The same approach here: for each consecutive pair, find
the integer translation maximising the mutual information of the overlap,
then accumulate the per-pair shifts into absolute corrections.

The paper's sensitivity argument is reproduced by
:class:`AlignmentReport`: the residual alignment noise must stay below the
wire-height / cross-section-height budget (0.77 % for their B5 stack).

Performance note
----------------
The MI search is the wall-clock bottleneck of a campaign run: an
exhaustive ±4 px window scores 81 candidate shifts per pair and a
multi-baseline stack registers every slice against three predecessors.
The naive implementation re-bins the same float images through
``np.histogram2d`` for every candidate — quantising each pixel 243 times
per pair.  The fast path here quantises every slice to bin indices
*once* (:func:`_bin_indices`, bit-compatible with ``histogram2d``'s
binning) and builds each candidate's joint histogram with a single
``np.bincount`` over fused ``a_bin * bins + b_bin`` indices.  The MI
argmax is identical to the brute-force search, which is retained as
:func:`_reference_align_pair` for the perf harness and equality tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AlignmentBudgetExceeded, AlignmentError, PipelineError
from repro.obs import kernel_scope

_SEARCH_STRATEGIES = ("exhaustive", "pyramid")


def mutual_information(a: np.ndarray, b: np.ndarray, bins: int = 32) -> float:
    """Mutual information (nats) between two equally-shaped images."""
    if a.shape != b.shape:
        raise AlignmentError("mutual information needs equal shapes", stage="align")
    hist, _, _ = np.histogram2d(a.ravel(), b.ravel(), bins=bins, range=((0, 1), (0, 1)))
    return _mi_from_counts(hist)


def _mi_from_counts(counts: np.ndarray) -> float:
    """MI (nats) of a joint histogram.

    Shared by the reference path (``histogram2d`` float counts) and the
    fast path (``bincount`` integer counts): for equal counts the float
    operations are identical, so both paths score a shift with the exact
    same number.
    """
    pxy = counts / counts.sum()
    px = pxy.sum(axis=1, keepdims=True)
    py = pxy.sum(axis=0, keepdims=True)
    mask = pxy > 0
    return float(np.sum(pxy[mask] * np.log(pxy[mask] / (px @ py)[mask])))


def _bin_indices(image: np.ndarray, bins: int) -> np.ndarray:
    """Per-pixel bin index under ``histogram2d``'s uniform binning on (0, 1).

    Replicates ``np.histogramdd`` exactly — ``searchsorted(edges, v,
    'right')`` with the right edge inclusive — so joint histograms built
    from these indices match ``np.histogram2d`` count-for-count.  Pixels
    outside [0, 1] get an out-of-range index (< 0 or >= ``bins``) and are
    dropped from the joint histogram, as ``histogram2d`` drops them.
    """
    edges = np.linspace(0.0, 1.0, bins + 1)
    idx = np.searchsorted(edges, image.reshape(-1), side="right").reshape(image.shape)
    idx[image == 1.0] -= 1
    idx -= 1
    return idx


def _shifted_overlap(a: np.ndarray, b: np.ndarray, dx: int, dz: int) -> tuple[np.ndarray, np.ndarray]:
    """Overlapping crops of *a* and *b* when *b* is shifted by (dx, dz)."""
    nx, nz = a.shape
    ax0, ax1 = max(0, dx), min(nx, nx + dx)
    bx0, bx1 = max(0, -dx), min(nx, nx - dx)
    az0, az1 = max(0, dz), min(nz, nz + dz)
    bz0, bz1 = max(0, -dz), min(nz, nz - dz)
    return a[ax0:ax1, az0:az1], b[bx0:bx1, bz0:bz1]


@dataclass(frozen=True)
class _IndexedImage:
    """A slice pre-quantised for the bincount-MI search."""

    indices: np.ndarray  #: per-pixel bin index (may be out of range)
    all_valid: bool  #: no pixel falls outside [0, 1]


def _index_image(image: np.ndarray, bins: int) -> _IndexedImage:
    idx = _bin_indices(image, bins)
    all_valid = bool(((idx >= 0) & (idx < bins)).all())
    return _IndexedImage(indices=idx, all_valid=all_valid)


def _score_shift(
    a: _IndexedImage,
    b: _IndexedImage,
    dx: int,
    dz: int,
    bins: int,
    shift_penalty: float,
) -> float | None:
    """Penalised MI of the (dx, dz) overlap, or ``None`` when empty."""
    ca, cb = _shifted_overlap(a.indices, b.indices, dx, dz)
    if ca.size == 0:
        return None
    if a.all_valid and b.all_valid:
        fused = ca * bins + cb
    else:
        valid = (ca >= 0) & (ca < bins) & (cb >= 0) & (cb < bins)
        fused = ca[valid] * bins + cb[valid]
    counts = np.bincount(fused.reshape(-1), minlength=bins * bins).reshape(bins, bins)
    return _mi_from_counts(counts) - shift_penalty * (abs(dx) + abs(dz))


def _best_shift(
    a: _IndexedImage,
    b: _IndexedImage,
    candidates: list[tuple[int, int]],
    bins: int,
    shift_penalty: float,
    seed: tuple[tuple[int, int], float] | None = None,
) -> tuple[tuple[int, int], float]:
    """Highest-scoring candidate shift (first wins ties, as the brute force)."""
    best, best_score = seed if seed is not None else ((0, 0), -np.inf)
    for dx, dz in candidates:
        score = _score_shift(a, b, dx, dz, bins, shift_penalty)
        if score is not None and score > best_score:
            best_score = score
            best = (dx, dz)
    return best, best_score


def _align_pair_indexed(
    a: _IndexedImage,
    b: _IndexedImage,
    search_px: int,
    bins: int,
    shift_penalty: float,
    search_strategy: str,
) -> tuple[int, int]:
    """The MI search over pre-quantised images."""
    if search_strategy == "exhaustive":
        candidates = [
            (dx, dz)
            for dx in range(-search_px, search_px + 1)
            for dz in range(-search_px, search_px + 1)
        ]
        return _best_shift(a, b, candidates, bins, shift_penalty)[0]
    if search_strategy != "pyramid":
        raise PipelineError(
            f"unknown search strategy {search_strategy!r} "
            f"(expected one of {_SEARCH_STRATEGIES})"
        )
    # Coarse-to-fine: score a stride-2 lattice (always including 0), then
    # refine ±1 around the coarse winner.  O(search_px²/4 + 9) evaluations
    # instead of O(search_px²); may differ from the exhaustive argmax when
    # the MI surface has off-lattice maxima, which is why it is opt-in.
    lattice = sorted({o for o in range(-search_px, search_px + 1, 2)} | {0})
    coarse = [(dx, dz) for dx in lattice for dz in lattice]
    best, best_score = _best_shift(a, b, coarse, bins, shift_penalty)
    seen = set(coarse)
    refine = [
        (dx, dz)
        for dx in range(max(-search_px, best[0] - 1), min(search_px, best[0] + 1) + 1)
        for dz in range(max(-search_px, best[1] - 1), min(search_px, best[1] + 1) + 1)
        if (dx, dz) not in seen
    ]
    return _best_shift(a, b, refine, bins, shift_penalty, seed=(best, best_score))[0]


def align_pair(
    reference: np.ndarray,
    moving: np.ndarray,
    search_px: int = 4,
    bins: int = 32,
    shift_penalty: float = 0.01,
    search_strategy: str = "exhaustive",
) -> tuple[int, int]:
    """Translation (dx, dz) that best aligns *moving* onto *reference*.

    Exhaustive integer search over ±``search_px``, scoring mutual
    information of the overlap — small search windows suffice because
    consecutive slices drift by at most a pixel or two.  Each image is
    quantised to histogram bin indices once and every candidate shift is
    scored from a single ``np.bincount``; the result is identical to the
    brute-force ``histogram2d`` search (retained as
    :func:`_reference_align_pair`).

    ``shift_penalty`` (nats per pixel of shift) regularises the search:
    cross-sections of the SA region are nearly translation-invariant along
    the bitline direction (long parallel rails), so without a mild
    preference for small shifts the MI surface is flat along that axis and
    noise drives the estimate — the per-scan tuning §IV-C alludes to.

    ``search_strategy="pyramid"`` switches to an opt-in coarse-to-fine
    search (stride-2 lattice, then ±1 refinement) that scores roughly a
    quarter of the candidates; it can differ from the exhaustive argmax on
    pathological MI surfaces, so the default stays ``"exhaustive"``.
    """
    a = _index_image(reference, bins)
    b = _index_image(moving, bins)
    return _align_pair_indexed(a, b, search_px, bins, shift_penalty, search_strategy)


def _reference_align_pair(
    reference: np.ndarray,
    moving: np.ndarray,
    search_px: int = 4,
    bins: int = 32,
    shift_penalty: float = 0.01,
) -> tuple[int, int]:
    """The original brute-force MI search (``histogram2d`` per candidate).

    Retained as the ground truth for the bincount fast path: equality
    tests assert both return the identical ``(dx, dz)``, and the perf
    harness (:mod:`repro.perf`) reports the fast path's speedup against
    this implementation.
    """
    best = (0, 0)
    best_score = -np.inf
    for dx in range(-search_px, search_px + 1):
        for dz in range(-search_px, search_px + 1):
            ca, cb = _shifted_overlap(reference, moving, dx, dz)
            if ca.size == 0:
                continue
            score = mutual_information(ca, cb, bins=bins) - shift_penalty * (abs(dx) + abs(dz))
            if score > best_score:
                best_score = score
                best = (dx, dz)
    return best


@dataclass
class AlignmentReport:
    """Outcome of stack alignment.

    ``corrections`` are the absolute per-slice shifts applied (px).  When
    ground-truth drift is available (simulated stacks), ``residual_px`` is
    the per-slice error of correction vs truth and the budget check of
    §IV-C can be evaluated exactly.
    """

    corrections: list[tuple[int, int]]
    residual_px: list[tuple[int, int]] = field(default_factory=list)

    def max_residual_px(self) -> int:
        """Worst absolute residual component across the stack."""
        if not self.residual_px:
            return 0
        return max(max(abs(dx), abs(dz)) for dx, dz in self.residual_px)

    def residual_fraction(self, extent_px: int) -> float:
        """Worst residual as a fraction of the cross-section extent."""
        if extent_px <= 0:
            raise PipelineError("extent must be positive")
        return self.max_residual_px() / extent_px

    def check_budget(self, extent_px: int, budget_fraction: float) -> None:
        """Raise :class:`AlignmentBudgetExceeded` when out of budget."""
        frac = self.residual_fraction(extent_px)
        if frac > budget_fraction:
            raise AlignmentBudgetExceeded(frac, budget_fraction)


def apply_shift(image: np.ndarray, dx: int, dz: int) -> np.ndarray:
    """Shift an image by whole pixels with edge replication."""
    out = image
    if dx:
        out = np.roll(out, dx, axis=0)
        if dx > 0:
            out[:dx, :] = out[dx, :]
        else:
            out[dx:, :] = out[dx - 1, :]
    if dz:
        out = np.roll(out, dz, axis=1)
        if dz > 0:
            out[:, :dz] = out[:, dz][:, None]
        else:
            out[:, dz:] = out[:, dz - 1][:, None]
    return out.copy() if out is image else out


def align_stack(
    images: list[np.ndarray],
    search_px: int = 4,
    bins: int = 32,
    true_drift_px: list[tuple[int, int]] | None = None,
    baselines: tuple[int, ...] = (1, 2, 3),
    workers: int = 1,
    shift_penalty: float = 0.01,
    search_strategy: str = "exhaustive",
) -> tuple[list[np.ndarray], AlignmentReport]:
    """Align a slice stack and return the corrected images plus the report.

    Estimation is raw-vs-raw (aligning against already-shifted neighbours
    would feed the edge-replication bands of earlier corrections back into
    the similarity metric and let errors run away) and *multi-baseline*:
    each slice is registered against several predecessors (offsets in
    *baselines*) and the absolute position is the rounded average of the
    individual predictions.  Single-baseline chaining accumulates the ±1 px
    quantisation error of every pair as a random walk; fusing independent
    baselines keeps the accumulated error within a pixel over hundreds of
    slices — which is what the §IV-C noise budget demands.

    Every slice is quantised to MI histogram indices exactly once, here,
    regardless of how many baselines read it — the (i, i−k) searches then
    run entirely on integer indices (see :func:`align_pair`).
    ``shift_penalty`` and ``search_strategy`` are forwarded to every
    pairwise search.

    With *true_drift_px* (from a simulated acquisition) the report carries
    exact residuals for the 0.77 %-style budget check.

    Because every pairwise registration reads only the *raw* images, the
    (i, i−k) estimates are mutually independent; with ``workers > 1`` they
    are computed by a thread pool before the (sequential, cheap) fusion
    pass.  The result is bit-identical for any worker count.
    """
    if not images:
        raise AlignmentError("empty stack", stage="align")
    if search_strategy not in _SEARCH_STRATEGIES:
        raise PipelineError(
            f"unknown search strategy {search_strategy!r} "
            f"(expected one of {_SEARCH_STRATEGIES})"
        )

    with kernel_scope(
        "align_stack",
        pixels=sum(int(img.size) for img in images),
        slices=len(images),
        strategy=search_strategy,
        workers=workers,
    ) as scope:
        indexed = [_index_image(img, bins) for img in images]
        pairs = [
            (i, k)
            for i in range(1, len(images))
            for k in baselines
            if i - k >= 0
        ]
        scope.set(pairs=len(pairs))

        def _pair_shift(pair: tuple[int, int]) -> tuple[int, int]:
            i, k = pair
            return _align_pair_indexed(
                indexed[i - k], indexed[i], search_px, bins, shift_penalty,
                search_strategy,
            )

        if workers > 1 and len(pairs) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=workers) as pool:
                shifts = dict(zip(pairs, pool.map(_pair_shift, pairs)))
        else:
            shifts = {pair: _pair_shift(pair) for pair in pairs}

        absolute: list[tuple[int, int]] = [(0, 0)]
        ax_f: list[tuple[float, float]] = [(0.0, 0.0)]
        for i in range(1, len(images)):
            predictions_x: list[float] = []
            predictions_z: list[float] = []
            for k in baselines:
                if i - k < 0:
                    continue
                dx, dz = shifts[(i, k)]
                predictions_x.append(ax_f[i - k][0] + dx)
                predictions_z.append(ax_f[i - k][1] + dz)
            fx = float(np.mean(predictions_x))
            fz = float(np.mean(predictions_z))
            ax_f.append((fx, fz))
            absolute.append((int(round(fx)), int(round(fz))))

        aligned = [apply_shift(img, dx, dz) for img, (dx, dz) in zip(images, absolute)]

        residuals: list[tuple[int, int]] = []
        if true_drift_px is not None:
            if len(true_drift_px) != len(images):
                raise AlignmentError("true drift length mismatch", stage="align")
            # Perfect correction would be -drift (up to a global offset fixed by
            # the first slice, whose drift is never observable).
            ref_dx, ref_dz = true_drift_px[0]
            for (cx, cz), (tx, tz) in zip(absolute, true_drift_px):
                residuals.append((cx + (tx - ref_dx), cz + (tz - ref_dz)))

        report = AlignmentReport(corrections=absolute, residual_px=residuals)
        return aligned, report


def _reference_align_stack(
    images: list[np.ndarray],
    search_px: int = 4,
    bins: int = 32,
    true_drift_px: list[tuple[int, int]] | None = None,
    baselines: tuple[int, ...] = (1, 2, 3),
    shift_penalty: float = 0.01,
) -> tuple[list[np.ndarray], AlignmentReport]:
    """Stack alignment over the brute-force pairwise search.

    Same fusion pass as :func:`align_stack`, but every pairwise estimate
    comes from :func:`_reference_align_pair` — the perf harness times this
    to report the real end-to-end speedup of the bincount rewrite.
    """
    if not images:
        raise AlignmentError("empty stack", stage="align")
    shifts = {
        (i, k): _reference_align_pair(
            images[i - k], images[i], search_px=search_px, bins=bins,
            shift_penalty=shift_penalty,
        )
        for i in range(1, len(images))
        for k in baselines
        if i - k >= 0
    }
    absolute: list[tuple[int, int]] = [(0, 0)]
    ax_f: list[tuple[float, float]] = [(0.0, 0.0)]
    for i in range(1, len(images)):
        predictions_x = [ax_f[i - k][0] + shifts[(i, k)][0] for k in baselines if i - k >= 0]
        predictions_z = [ax_f[i - k][1] + shifts[(i, k)][1] for k in baselines if i - k >= 0]
        fx = float(np.mean(predictions_x))
        fz = float(np.mean(predictions_z))
        ax_f.append((fx, fz))
        absolute.append((int(round(fx)), int(round(fz))))
    aligned = [apply_shift(img, dx, dz) for img, (dx, dz) in zip(images, absolute)]
    residuals: list[tuple[int, int]] = []
    if true_drift_px is not None:
        if len(true_drift_px) != len(images):
            raise AlignmentError("true drift length mismatch", stage="align")
        ref_dx, ref_dz = true_drift_px[0]
        for (cx, cz), (tx, tz) in zip(absolute, true_drift_px):
            residuals.append((cx + (tx - ref_dx), cz + (tz - ref_dz)))
    return aligned, AlignmentReport(corrections=absolute, residual_px=residuals)
