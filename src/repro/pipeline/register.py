"""Slice-to-slice alignment by mutual information.

§IV-C: "we align the slices using the mutual-information algorithm of
Dragonfly.  In particular, each slide is aligned with respect to the
previous one."  The same approach here: for each consecutive pair, find
the integer translation maximising the mutual information of the overlap,
then accumulate the per-pair shifts into absolute corrections.

The paper's sensitivity argument is reproduced by
:class:`AlignmentReport`: the residual alignment noise must stay below the
wire-height / cross-section-height budget (0.77 % for their B5 stack).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AlignmentBudgetExceeded, PipelineError


def mutual_information(a: np.ndarray, b: np.ndarray, bins: int = 32) -> float:
    """Mutual information (nats) between two equally-shaped images."""
    if a.shape != b.shape:
        raise PipelineError("mutual information needs equal shapes")
    hist, _, _ = np.histogram2d(a.ravel(), b.ravel(), bins=bins, range=((0, 1), (0, 1)))
    pxy = hist / hist.sum()
    px = pxy.sum(axis=1, keepdims=True)
    py = pxy.sum(axis=0, keepdims=True)
    mask = pxy > 0
    return float(np.sum(pxy[mask] * np.log(pxy[mask] / (px @ py)[mask])))


def _shifted_overlap(a: np.ndarray, b: np.ndarray, dx: int, dz: int) -> tuple[np.ndarray, np.ndarray]:
    """Overlapping crops of *a* and *b* when *b* is shifted by (dx, dz)."""
    nx, nz = a.shape
    ax0, ax1 = max(0, dx), min(nx, nx + dx)
    bx0, bx1 = max(0, -dx), min(nx, nx - dx)
    az0, az1 = max(0, dz), min(nz, nz + dz)
    bz0, bz1 = max(0, -dz), min(nz, nz - dz)
    return a[ax0:ax1, az0:az1], b[bx0:bx1, bz0:bz1]


def align_pair(
    reference: np.ndarray,
    moving: np.ndarray,
    search_px: int = 4,
    bins: int = 32,
    shift_penalty: float = 0.01,
) -> tuple[int, int]:
    """Translation (dx, dz) that best aligns *moving* onto *reference*.

    Exhaustive integer search over ±``search_px``, scoring mutual
    information of the overlap — small search windows suffice because
    consecutive slices drift by at most a pixel or two.

    ``shift_penalty`` (nats per pixel of shift) regularises the search:
    cross-sections of the SA region are nearly translation-invariant along
    the bitline direction (long parallel rails), so without a mild
    preference for small shifts the MI surface is flat along that axis and
    noise drives the estimate — the per-scan tuning §IV-C alludes to.
    """
    best = (0, 0)
    best_score = -np.inf
    for dx in range(-search_px, search_px + 1):
        for dz in range(-search_px, search_px + 1):
            ca, cb = _shifted_overlap(reference, moving, dx, dz)
            if ca.size == 0:
                continue
            score = mutual_information(ca, cb, bins=bins) - shift_penalty * (abs(dx) + abs(dz))
            if score > best_score:
                best_score = score
                best = (dx, dz)
    return best


@dataclass
class AlignmentReport:
    """Outcome of stack alignment.

    ``corrections`` are the absolute per-slice shifts applied (px).  When
    ground-truth drift is available (simulated stacks), ``residual_px`` is
    the per-slice error of correction vs truth and the budget check of
    §IV-C can be evaluated exactly.
    """

    corrections: list[tuple[int, int]]
    residual_px: list[tuple[int, int]] = field(default_factory=list)

    def max_residual_px(self) -> int:
        """Worst absolute residual component across the stack."""
        if not self.residual_px:
            return 0
        return max(max(abs(dx), abs(dz)) for dx, dz in self.residual_px)

    def residual_fraction(self, extent_px: int) -> float:
        """Worst residual as a fraction of the cross-section extent."""
        if extent_px <= 0:
            raise PipelineError("extent must be positive")
        return self.max_residual_px() / extent_px

    def check_budget(self, extent_px: int, budget_fraction: float) -> None:
        """Raise :class:`AlignmentBudgetExceeded` when out of budget."""
        frac = self.residual_fraction(extent_px)
        if frac > budget_fraction:
            raise AlignmentBudgetExceeded(frac, budget_fraction)


def apply_shift(image: np.ndarray, dx: int, dz: int) -> np.ndarray:
    """Shift an image by whole pixels with edge replication."""
    out = image
    if dx:
        out = np.roll(out, dx, axis=0)
        if dx > 0:
            out[:dx, :] = out[dx, :]
        else:
            out[dx:, :] = out[dx - 1, :]
    if dz:
        out = np.roll(out, dz, axis=1)
        if dz > 0:
            out[:, :dz] = out[:, dz][:, None]
        else:
            out[:, dz:] = out[:, dz - 1][:, None]
    return out.copy() if out is image else out


def align_stack(
    images: list[np.ndarray],
    search_px: int = 4,
    bins: int = 32,
    true_drift_px: list[tuple[int, int]] | None = None,
    baselines: tuple[int, ...] = (1, 2, 3),
    workers: int = 1,
) -> tuple[list[np.ndarray], AlignmentReport]:
    """Align a slice stack and return the corrected images plus the report.

    Estimation is raw-vs-raw (aligning against already-shifted neighbours
    would feed the edge-replication bands of earlier corrections back into
    the similarity metric and let errors run away) and *multi-baseline*:
    each slice is registered against several predecessors (offsets in
    *baselines*) and the absolute position is the rounded average of the
    individual predictions.  Single-baseline chaining accumulates the ±1 px
    quantisation error of every pair as a random walk; fusing independent
    baselines keeps the accumulated error within a pixel over hundreds of
    slices — which is what the §IV-C noise budget demands.

    With *true_drift_px* (from a simulated acquisition) the report carries
    exact residuals for the 0.77 %-style budget check.

    Because every pairwise registration reads only the *raw* images, the
    (i, i−k) estimates are mutually independent; with ``workers > 1`` they
    are computed by a thread pool before the (sequential, cheap) fusion
    pass.  The result is bit-identical for any worker count.
    """
    if not images:
        raise PipelineError("empty stack")

    pairs = [
        (i, k)
        for i in range(1, len(images))
        for k in baselines
        if i - k >= 0
    ]
    if workers > 1 and len(pairs) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            shifts = dict(zip(pairs, pool.map(
                lambda p: align_pair(
                    images[p[0] - p[1]], images[p[0]], search_px=search_px, bins=bins
                ),
                pairs,
            )))
    else:
        shifts = {
            (i, k): align_pair(images[i - k], images[i], search_px=search_px, bins=bins)
            for i, k in pairs
        }

    absolute: list[tuple[int, int]] = [(0, 0)]
    ax_f: list[tuple[float, float]] = [(0.0, 0.0)]
    for i in range(1, len(images)):
        predictions_x: list[float] = []
        predictions_z: list[float] = []
        for k in baselines:
            if i - k < 0:
                continue
            dx, dz = shifts[(i, k)]
            predictions_x.append(ax_f[i - k][0] + dx)
            predictions_z.append(ax_f[i - k][1] + dz)
        fx = float(np.mean(predictions_x))
        fz = float(np.mean(predictions_z))
        ax_f.append((fx, fz))
        absolute.append((int(round(fx)), int(round(fz))))

    aligned = [apply_shift(img, dx, dz) for img, (dx, dz) in zip(images, absolute)]

    residuals: list[tuple[int, int]] = []
    if true_drift_px is not None:
        if len(true_drift_px) != len(images):
            raise PipelineError("true drift length mismatch")
        # Perfect correction would be -drift (up to a global offset fixed by
        # the first slice, whose drift is never observable).
        ref_dx, ref_dz = true_drift_px[0]
        for (cx, cz), (tx, tz) in zip(absolute, true_drift_px):
            residuals.append((cx + (tx - ref_dx), cz + (tz - ref_dz)))

    report = AlignmentReport(corrections=absolute, residual_px=residuals)
    return aligned, report
