"""Edge-preserving denoising: total-variation minimisation.

§IV-C: "we filter the images to reduce noise with edge preserving
algorithms (split-Bregman or Chambolle for a total-variation denoising)".
Both are implemented here from their primary publications:

* :func:`chambolle_tv` — A. Chambolle, *An algorithm for total variation
  minimization and applications*, JMIV 20, 2004: dual projection iteration
  for the ROF model ``min_u ‖u − f‖²/(2λ) + TV(u)``.
* :func:`split_bregman_tv` — Goldstein & Osher, *The split Bregman method
  for L1-regularized problems*, SIAM J. Imaging Sci. 2(2), 2009:
  variable-splitting with Bregman updates, Gauss–Seidel inner solve and
  anisotropic shrinkage.

Both operate on float images in [0, 1] and preserve material edges far
better than linear smoothing — which is the property the reverse
engineering needs (wire boundaries survive).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PipelineError


def _gradient(u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Forward differences with Neumann boundary."""
    gx = np.zeros_like(u)
    gy = np.zeros_like(u)
    gx[:-1, :] = u[1:, :] - u[:-1, :]
    gy[:, :-1] = u[:, 1:] - u[:, :-1]
    return gx, gy


def _divergence(px: np.ndarray, py: np.ndarray) -> np.ndarray:
    """Backward-difference divergence, adjoint of :func:`_gradient`."""
    div = np.zeros_like(px)
    div[0, :] += px[0, :]
    div[1:-1, :] += px[1:-1, :] - px[:-2, :]
    div[-1, :] += -px[-2, :]
    div[:, 0] += py[:, 0]
    div[:, 1:-1] += py[:, 1:-1] - py[:, :-2]
    div[:, -1] += -py[:, -2]
    return div


def chambolle_tv(
    image: np.ndarray,
    weight: float = 0.08,
    iterations: int = 60,
    tau: float = 0.248,
) -> np.ndarray:
    """Chambolle (2004) dual projection TV denoising.

    ``weight`` is the ROF fidelity weight λ (larger → smoother); ``tau`` the
    dual step (stable for τ ≤ 1/4 in 2-D).
    """
    if image.ndim != 2:
        raise PipelineError("chambolle_tv expects a 2-D image")
    f = image.astype(np.float64)
    px = np.zeros_like(f)
    py = np.zeros_like(f)
    for _ in range(iterations):
        div_p = _divergence(px, py)
        gx, gy = _gradient(div_p - f / weight)
        norm = np.sqrt(gx * gx + gy * gy)
        denom = 1.0 + tau * norm
        px = (px + tau * gx) / denom
        py = (py + tau * gy) / denom
    return (f - weight * _divergence(px, py)).astype(image.dtype)


def _shrink(x: np.ndarray, gamma: float) -> np.ndarray:
    """Soft-thresholding (the Bregman shrink operator)."""
    return np.sign(x) * np.maximum(np.abs(x) - gamma, 0.0)


def split_bregman_tv(
    image: np.ndarray,
    weight: float = 0.08,
    iterations: int = 12,
    inner_iterations: int = 2,
    bregman_mu: float | None = None,
) -> np.ndarray:
    """Goldstein–Osher (2009) split-Bregman anisotropic TV denoising.

    Solves ``min_u μ/2 ‖u − f‖² + |∇u|₁`` by splitting ``d = ∇u`` with
    Bregman variables ``b`` and alternating: a Gauss–Seidel (Jacobi-swept)
    solve for ``u``, shrinkage for ``d``, and the Bregman update.
    ``weight`` plays the role of 1/μ so the API matches
    :func:`chambolle_tv`.
    """
    if image.ndim != 2:
        raise PipelineError("split_bregman_tv expects a 2-D image")
    f = image.astype(np.float64)
    mu = bregman_mu if bregman_mu is not None else 1.0 / max(weight, 1e-6)
    lam = mu / 2.0  # splitting weight (λ ∝ μ keeps the subproblems balanced)

    u = f.copy()
    dx = np.zeros_like(f)
    dy = np.zeros_like(f)
    bx = np.zeros_like(f)
    by = np.zeros_like(f)

    for _ in range(iterations):
        for _ in range(inner_iterations):
            # Jacobi sweep of (μ + λ ∇ᵀ∇) u = μ f + λ ∇ᵀ(d − b), where the
            # adjoint of the forward-difference gradient is ∇ᵀ = −div.
            rhs = mu * f - lam * _divergence(dx - bx, dy - by)
            neighbours = (
                np.roll(u, 1, axis=0)
                + np.roll(u, -1, axis=0)
                + np.roll(u, 1, axis=1)
                + np.roll(u, -1, axis=1)
            )
            u = (rhs + lam * neighbours) / (mu + 4.0 * lam)
        gx, gy = _gradient(u)
        dx = _shrink(gx + bx, 1.0 / lam)
        dy = _shrink(gy + by, 1.0 / lam)
        bx = bx + gx - dx
        by = by + gy - dy
    return u.astype(image.dtype)


def denoise_stack(
    images: list[np.ndarray],
    method: str = "chambolle",
    weight: float = 0.08,
    workers: int = 1,
    **kwargs,
) -> list[np.ndarray]:
    """Denoise every slice of a stack with the chosen algorithm.

    Slices are independent, so with ``workers > 1`` they are processed by a
    thread pool (numpy releases the GIL in the inner array ops).  Output
    order — and every output value — is identical for any worker count.
    """
    if method == "chambolle":
        fn = chambolle_tv
    elif method == "split_bregman":
        fn = split_bregman_tv
    else:
        raise PipelineError(f"unknown denoising method {method!r}")
    if workers > 1 and len(images) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(lambda img: fn(img, weight=weight, **kwargs), images))
    return [fn(img, weight=weight, **kwargs) for img in images]


def residual_noise(clean: np.ndarray, denoised: np.ndarray) -> float:
    """RMS error against a known clean image (for scoring the denoisers)."""
    return float(np.sqrt(np.mean((clean.astype(np.float64) - denoised) ** 2)))
