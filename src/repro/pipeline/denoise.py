"""Edge-preserving denoising: total-variation minimisation.

§IV-C: "we filter the images to reduce noise with edge preserving
algorithms (split-Bregman or Chambolle for a total-variation denoising)".
Both are implemented here from their primary publications:

* :func:`chambolle_tv` — A. Chambolle, *An algorithm for total variation
  minimization and applications*, JMIV 20, 2004: dual projection iteration
  for the ROF model ``min_u ‖u − f‖²/(2λ) + TV(u)``.
* :func:`split_bregman_tv` — Goldstein & Osher, *The split Bregman method
  for L1-regularized problems*, SIAM J. Imaging Sci. 2(2), 2009:
  variable-splitting with Bregman updates, Gauss–Seidel inner solve and
  anisotropic shrinkage.

Both operate on float images in [0, 1] and preserve material edges far
better than linear smoothing — which is the property the reverse
engineering needs (wire boundaries survive).

Performance note
----------------
The solvers iterate dozens of times per slice over a handful of
same-shaped float64 fields; the naive formulation allocated ~8 fresh
arrays *per iteration* and built the Gauss–Seidel neighbour sum from four
``np.roll`` copies.  The implementations below lease every working array
once per call from a thread-local buffer pool (:func:`_lease` /
:func:`_release`), update in place with ``out=``-based ufuncs, and fill
the neighbour sum by slice assignment; the Chambolle sweep is additionally
row-blocked (:func:`_block_rows`) so its per-element intermediates stay
cache-resident rather than streaming full-size arrays through every
ufunc.  Every floating-point operation is
kept in the original order, so the outputs are bit-identical to the seed
implementations — which are retained as :func:`_reference_chambolle_tv`
and :func:`_reference_split_bregman_tv` for the equality tests and the
perf harness (:mod:`repro.perf`).  The opt-in ``tol=`` knob adds an early
convergence exit; the default ``tol=None`` preserves the exact iteration
count.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import PipelineError
from repro.obs import kernel_scope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.pipeline.config import ShardPlan


def _gradient(u: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Forward differences with Neumann boundary."""
    gx = np.zeros_like(u)
    gy = np.zeros_like(u)
    gx[:-1, :] = u[1:, :] - u[:-1, :]
    gy[:, :-1] = u[:, 1:] - u[:, :-1]
    return gx, gy


def _divergence(px: np.ndarray, py: np.ndarray) -> np.ndarray:
    """Backward-difference divergence, adjoint of :func:`_gradient`."""
    div = np.zeros_like(px)
    div[0, :] += px[0, :]
    div[1:-1, :] += px[1:-1, :] - px[:-2, :]
    div[-1, :] += -px[-2, :]
    div[:, 0] += py[:, 0]
    div[:, 1:-1] += py[:, 1:-1] - py[:, :-2]
    div[:, -1] += -py[:, -2]
    return div


# ---------------------------------------------------------------------------
# Thread-local buffer pool.  TV denoising runs per slice inside thread pools
# (``denoise_stack(workers=...)`` and the campaign runtime), so free lists are
# kept per thread: leasing never takes a lock and never hands a buffer to two
# slices at once.

_POOL = threading.local()
_POOL_MAX_PER_KEY = 32  #: free buffers kept per (shape, dtype); excess is dropped


def _lease(shape: tuple[int, ...], n: int) -> list[np.ndarray]:
    """Take *n* float64 scratch arrays of *shape* from this thread's pool."""
    free = getattr(_POOL, "free", None)
    if free is None:
        free = _POOL.free = {}
    stack = free.setdefault(shape, [])
    return [stack.pop() if stack else np.empty(shape, np.float64) for _ in range(n)]


def _release(buffers: list[np.ndarray]) -> None:
    """Return leased arrays to this thread's pool (contents left dirty)."""
    free = getattr(_POOL, "free", None)
    if free is None:
        free = _POOL.free = {}
    for buf in buffers:
        stack = free.setdefault(buf.shape, [])
        if len(stack) < _POOL_MAX_PER_KEY:
            stack.append(buf)


def clear_buffer_pool() -> None:
    """Drop this thread's pooled scratch arrays (frees the memory)."""
    _POOL.free = {}


def _gradient_into(u: np.ndarray, gx: np.ndarray, gy: np.ndarray) -> None:
    """:func:`_gradient` into preallocated outputs (same values, no allocs)."""
    np.subtract(u[1:, :], u[:-1, :], out=gx[:-1, :])
    gx[-1, :] = 0.0
    np.subtract(u[:, 1:], u[:, :-1], out=gy[:, :-1])
    gy[:, -1] = 0.0


def _divergence_into(
    px: np.ndarray, py: np.ndarray, out: np.ndarray, scratch: np.ndarray
) -> None:
    """:func:`_divergence` into a preallocated output.

    Accumulates in the exact order of the allocating version (zero-filled
    buffer, then the same ``+=`` updates) so results match bit for bit.
    """
    out.fill(0.0)
    out[0, :] += px[0, :]
    np.subtract(px[1:-1, :], px[:-2, :], out=scratch[1:-1, :])
    out[1:-1, :] += scratch[1:-1, :]
    out[-1, :] -= px[-2, :]
    out[:, 0] += py[:, 0]
    np.subtract(py[:, 1:-1], py[:, :-2], out=scratch[:, 1:-1])
    out[:, 1:-1] += scratch[:, 1:-1]
    out[:, -1] -= py[:, -2]


def _block_rows(nx: int, nz: int) -> int:
    """Row-block height whose float64 scratch stays L2-resident (~96 KB)."""
    return max(16, min(nx, 98304 // max(nz * 8, 1)))


def chambolle_tv(
    image: np.ndarray,
    weight: float = 0.08,
    iterations: int = 60,
    tau: float = 0.248,
    tol: float | None = None,
) -> np.ndarray:
    """Chambolle (2004) dual projection TV denoising.

    ``weight`` is the ROF fidelity weight λ (larger → smoother); ``tau`` the
    dual step (stable for τ ≤ 1/4 in 2-D).  With ``tol`` set, iteration
    stops once the largest per-pixel change of the dual field drops below
    it (an opt-in speedup — the default ``None`` runs exactly
    ``iterations`` sweeps and is bit-identical to the reference
    implementation).

    Each sweep runs in two row-blocked phases (divergence + fidelity, then
    gradient/norm/dual update) so the per-block scratch stays cache-resident
    instead of streaming ~10 full-size intermediates per sweep.  Every
    element still sees the reference's exact scalar operation sequence —
    block boundaries only change *which ufunc call* computes an element,
    not its value.
    """
    if image.ndim != 2:
        raise PipelineError("chambolle_tv expects a 2-D image")
    shape = image.shape
    nx, nz = shape
    block = _block_rows(nx, nz)
    bshape = (min(block, nx), nz)
    full = _lease(shape, 5)
    blocked = _lease(bshape, 4 if tol is None else 5)
    try:
        f, f_over_w, px, py, div = full
        gx, gy, norm, scratch = blocked[:4]
        prev = blocked[4] if tol is not None else None
        f[...] = image
        np.divide(f, weight, out=f_over_w)
        px.fill(0.0)
        py.fill(0.0)
        for _ in range(iterations):
            delta = 0.0
            # Phase 1: div ← div(p) − f/λ, one pass over each full array.
            for r0 in range(0, nx, block):
                r1 = min(r0 + block, nx)
                d = div[r0:r1]
                hi = min(r1, nx - 1)
                if r0 == 0:
                    d[0, :] = px[0, :]
                    np.subtract(px[1:hi, :], px[: hi - 1, :], out=d[1:hi, :])
                else:
                    np.subtract(px[r0:hi, :], px[r0 - 1 : hi - 1, :], out=d[: hi - r0, :])
                if r1 == nx:
                    d[-1, :] = -px[-2, :]
                s = scratch[: r1 - r0]
                s[:, 0] = py[r0:r1, 0]
                np.subtract(py[r0:r1, 1:-1], py[r0:r1, :-2], out=s[:, 1:-1])
                # Plain assignment, not np.negative(..., out=): unary ufuncs
                # mis-read strided 1-D inputs when writing to a strided out
                # view on some numpy builds (observed on 2.4.x).
                s[:, -1] = -py[r0:r1, -2]
                d += s
                d -= f_over_w[r0:r1]
            # Phase 2: ∇div, the 1 + τ‖∇‖ denominator, and the dual update.
            for r0 in range(0, nx, block):
                r1 = min(r0 + block, nx)
                n = r1 - r0
                g_x, g_y, nm, s = gx[:n], gy[:n], norm[:n], scratch[:n]
                if r1 < nx:
                    np.subtract(div[r0 + 1 : r1 + 1, :], div[r0:r1, :], out=g_x)
                else:
                    np.subtract(div[r0 + 1 : r1, :], div[r0 : r1 - 1, :], out=g_x[:-1])
                    g_x[-1, :] = 0.0
                np.subtract(div[r0:r1, 1:], div[r0:r1, :-1], out=g_y[:, :-1])
                g_y[:, -1] = 0.0
                np.multiply(g_x, g_x, out=nm)
                np.multiply(g_y, g_y, out=s)
                nm += s
                np.sqrt(nm, out=nm)
                nm *= tau
                nm += 1.0  # now the denominator 1 + τ‖∇‖
                if prev is not None:
                    np.copyto(prev[:n], px[r0:r1])
                g_x *= tau
                px[r0:r1] += g_x
                px[r0:r1] /= nm
                g_y *= tau
                py[r0:r1] += g_y
                py[r0:r1] /= nm
                if prev is not None:
                    np.subtract(px[r0:r1], prev[:n], out=prev[:n])
                    np.abs(prev[:n], out=prev[:n])
                    delta = max(delta, float(prev[:n].max()))
            if tol is not None and delta < tol:
                break
        return (f - weight * _divergence(px, py)).astype(image.dtype)
    finally:
        _release(full)
        _release(blocked)


def _reference_chambolle_tv(
    image: np.ndarray,
    weight: float = 0.08,
    iterations: int = 60,
    tau: float = 0.248,
) -> np.ndarray:
    """The seed (allocating) Chambolle solver, retained as ground truth.

    The equality tests assert :func:`chambolle_tv` reproduces this bit for
    bit at default settings; the perf harness reports the pooled-buffer
    speedup against it.
    """
    if image.ndim != 2:
        raise PipelineError("chambolle_tv expects a 2-D image")
    f = image.astype(np.float64)
    px = np.zeros_like(f)
    py = np.zeros_like(f)
    for _ in range(iterations):
        div_p = _divergence(px, py)
        gx, gy = _gradient(div_p - f / weight)
        norm = np.sqrt(gx * gx + gy * gy)
        denom = 1.0 + tau * norm
        px = (px + tau * gx) / denom
        py = (py + tau * gy) / denom
    return (f - weight * _divergence(px, py)).astype(image.dtype)


def _shrink(x: np.ndarray, gamma: float) -> np.ndarray:
    """Soft-thresholding (the Bregman shrink operator)."""
    return np.sign(x) * np.maximum(np.abs(x) - gamma, 0.0)


def split_bregman_tv(
    image: np.ndarray,
    weight: float = 0.08,
    iterations: int = 12,
    inner_iterations: int = 2,
    bregman_mu: float | None = None,
    tol: float | None = None,
) -> np.ndarray:
    """Goldstein–Osher (2009) split-Bregman anisotropic TV denoising.

    Solves ``min_u μ/2 ‖u − f‖² + |∇u|₁`` by splitting ``d = ∇u`` with
    Bregman variables ``b`` and alternating: a Gauss–Seidel (Jacobi-swept)
    solve for ``u``, shrinkage for ``d``, and the Bregman update.
    ``weight`` plays the role of 1/μ so the API matches
    :func:`chambolle_tv`.  With ``tol`` set, the outer loop exits early
    once the largest per-pixel change of ``u`` over one outer iteration
    drops below it; the default ``None`` is bit-identical to the
    reference implementation.
    """
    if image.ndim != 2:
        raise PipelineError("split_bregman_tv expects a 2-D image")
    shape = image.shape
    mu = bregman_mu if bregman_mu is not None else 1.0 / max(weight, 1e-6)
    lam = mu / 2.0  # splitting weight (λ ∝ μ keeps the subproblems balanced)
    gamma = 1.0 / lam
    denom = mu + 4.0 * lam

    buffers = _lease(shape, 14 if tol is None else 15)
    try:
        (f, u, nb, rhs, div, dx, dy, bx, by, gx, gy,
         mag, sign, scratch) = buffers[:14]
        prev = buffers[14] if tol is not None else None
        f[...] = image
        u[...] = f
        for b in (dx, dy, bx, by):
            b.fill(0.0)

        for _ in range(iterations):
            if prev is not None:
                np.copyto(prev, u)
            # rhs = μf − λ∇ᵀ(d − b) is invariant across the inner sweeps
            # (d and b only change outside them), so hoist it out.
            np.subtract(dx, bx, out=gx)
            np.subtract(dy, by, out=gy)
            _divergence_into(gx, gy, div, scratch)
            div *= lam
            np.multiply(f, mu, out=rhs)
            rhs -= div
            for _ in range(inner_iterations):
                # Jacobi sweep of (μ + λ ∇ᵀ∇) u = rhs: the four wrapped
                # neighbour shifts of np.roll, by slice assignment.
                nb[1:, :] = u[:-1, :]
                nb[0, :] = u[-1, :]
                nb[:-1, :] += u[1:, :]
                nb[-1, :] += u[0, :]
                nb[:, 1:] += u[:, :-1]
                nb[:, 0] += u[:, -1]
                nb[:, :-1] += u[:, 1:]
                nb[:, -1] += u[:, 0]
                nb *= lam
                nb += rhs
                nb /= denom
                u, nb = nb, u  # u now holds the sweep result
            _gradient_into(u, gx, gy)
            for g, b, d in ((gx, bx, dx), (gy, by, dy)):
                np.add(g, b, out=mag)  # the shrink argument g + b
                np.sign(mag, out=sign)
                np.abs(mag, out=mag)
                mag -= gamma
                np.maximum(mag, 0.0, out=mag)
                np.multiply(sign, mag, out=d)
                b += g
                b -= d
            if prev is not None:
                np.subtract(u, prev, out=prev)
                np.abs(prev, out=prev)
                if float(prev.max()) < tol:
                    break
        return u.astype(image.dtype)
    finally:
        _release(buffers)


def _reference_split_bregman_tv(
    image: np.ndarray,
    weight: float = 0.08,
    iterations: int = 12,
    inner_iterations: int = 2,
    bregman_mu: float | None = None,
) -> np.ndarray:
    """The seed (allocating, ``np.roll``-based) split-Bregman solver.

    Retained as ground truth for the pooled-buffer rewrite — see
    :func:`_reference_chambolle_tv`.
    """
    if image.ndim != 2:
        raise PipelineError("split_bregman_tv expects a 2-D image")
    f = image.astype(np.float64)
    mu = bregman_mu if bregman_mu is not None else 1.0 / max(weight, 1e-6)
    lam = mu / 2.0

    u = f.copy()
    dx = np.zeros_like(f)
    dy = np.zeros_like(f)
    bx = np.zeros_like(f)
    by = np.zeros_like(f)

    for _ in range(iterations):
        for _ in range(inner_iterations):
            rhs = mu * f - lam * _divergence(dx - bx, dy - by)
            neighbours = (
                np.roll(u, 1, axis=0)
                + np.roll(u, -1, axis=0)
                + np.roll(u, 1, axis=1)
                + np.roll(u, -1, axis=1)
            )
            u = (rhs + lam * neighbours) / (mu + 4.0 * lam)
        gx, gy = _gradient(u)
        dx = _shrink(gx + bx, 1.0 / lam)
        dy = _shrink(gy + by, 1.0 / lam)
        bx = bx + gx - dx
        by = by + gy - dy
    return u.astype(image.dtype)


def _solver_for(method: str):
    if method == "chambolle":
        return chambolle_tv
    if method == "split_bregman":
        return split_bregman_tv
    raise PipelineError(f"unknown denoising method {method!r}")


def _denoise_shard(
    images: list[np.ndarray], method: str, weight: float, kwargs: dict
) -> list[np.ndarray]:
    """Denoise one slice batch (runs in shard workers; pure per slice)."""
    fn = _solver_for(method)
    return [fn(img, weight=weight, **kwargs) for img in images]


def denoise_one(
    image: np.ndarray, method: str, weight: float, kwargs: dict
) -> np.ndarray:
    """Denoise a single slice — the unit the fused acquire trip applies.

    Exactly the per-slice kernel :func:`denoise_stack` runs, so a stack
    denoised slice-by-slice inside the fused imaging pool trip
    (:func:`repro.imaging.fib.acquire_stack` with ``fuse=``) is
    bit-identical to a separate ``denoise`` stage pass.
    """
    return _denoise_shard([image], method, weight, kwargs)[0]


def denoise_stack(
    images: list[np.ndarray],
    method: str = "chambolle",
    weight: float = 0.08,
    workers: int = 1,
    shard: "ShardPlan | None" = None,
    **kwargs,
) -> list[np.ndarray]:
    """Denoise every slice of a stack with the chosen algorithm.

    Slices are independent, so with ``workers > 1`` they are processed by a
    thread pool (numpy releases the GIL in the inner array ops; the scratch
    buffer pool is thread-local, so workers never contend).  With ``shard``
    (a :class:`repro.pipeline.config.ShardPlan`) engaged, slice batches go
    to the campaign's shared shard *process* pool instead — the scheduling
    level that lets a single-chip campaign use every core.  Output order —
    and every output value — is identical for any worker count, shard
    batch size and ordering.  Extra keywords (``iterations=``, ``tol=``,
    …) pass through to the solver.
    """
    fn = _solver_for(method)
    with kernel_scope(
        "denoise_stack",
        pixels=sum(int(img.size) for img in images),
        method=method,
        slices=len(images),
        workers=workers,
    ):
        if shard is not None and shard.engaged(len(images)):
            from functools import partial

            from repro.runtime.shard import shard_map

            return shard_map(
                "denoise",
                partial(_denoise_shard, method=method, weight=weight, kwargs=kwargs),
                images,
                shard,
            )
        if workers > 1 and len(images) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(lambda img: fn(img, weight=weight, **kwargs), images)
                )
        return [fn(img, weight=weight, **kwargs) for img in images]


def _reference_denoise_stack(
    images: list[np.ndarray],
    method: str = "chambolle",
    weight: float = 0.08,
    **kwargs,
) -> list[np.ndarray]:
    """Stack denoising over the retained reference solvers (perf harness)."""
    if method == "chambolle":
        fn = _reference_chambolle_tv
    elif method == "split_bregman":
        fn = _reference_split_bregman_tv
    else:
        raise PipelineError(f"unknown denoising method {method!r}")
    return [fn(img, weight=weight, **kwargs) for img in images]


def residual_noise(clean: np.ndarray, denoised: np.ndarray) -> float:
    """RMS error against a known clean image (for scoring the denoisers)."""
    return float(np.sqrt(np.mean((clean.astype(np.float64) - denoised) ** 2)))
