"""Pipeline configuration and the common stage protocol.

Historically every §IV-C stage had its own keyword surface and
:func:`repro.reveng.workflow.reverse_engineer_stack` forwarded a loose
subset of it (``denoise_method=...``, ``align_search_px=...``).  That shape
neither composes (a campaign over six chips wants *one* value object to
hash, log and replay) nor extends (adding a stage parameter meant touching
every caller).  This module replaces it with:

* :class:`PipelineConfig` — one frozen dataclass holding every tunable of
  the §IV-C post-processing chain.  ``cache_token()`` returns the
  result-affecting subset as a canonical dict, which is what the
  :mod:`repro.runtime` stage cache hashes; execution-only knobs
  (``chunk_workers``) are deliberately excluded so a re-run with more
  threads still hits the cache.
* :class:`Stage` — the common protocol (volume in → volume out, plus a
  ``notes`` dict of floats) every stage adapter follows.
* Concrete adapters (:class:`DenoiseStage`, :class:`AlignStage`,
  :class:`AssembleStage`, :class:`PlanarViewStage`, :class:`SegmentStage`)
  that give :func:`~repro.pipeline.denoise.denoise_stack`,
  :func:`~repro.pipeline.register.align_stack`,
  :func:`~repro.pipeline.stack.assemble_volume`,
  :func:`~repro.pipeline.stack.planar_views` and the intensity
  segmentation one signature shape, so the campaign engine can treat the
  chain uniformly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.errors import PipelineError
from repro.pipeline.denoise import denoise_stack
from repro.pipeline.register import AlignmentReport, align_stack
from repro.pipeline.stack import AlignedVolume, assemble_volume, planar_views

_DENOISE_METHODS = ("chambolle", "split_bregman")
_SEARCH_STRATEGIES = ("exhaustive", "pyramid")
_SHARD_ORDERINGS = ("contiguous", "striped")
_DATA_PLANES = ("pickle", "shm")


@dataclass(frozen=True)
class ShardPlan:
    """How per-slice stage work is sharded over the shard worker pool.

    The per-slice stages (acquire imaging, TV denoise, slice QC) are
    embarrassingly parallel across slices; a :class:`ShardPlan` with
    ``slices=True`` lets the campaign runtime batch their slices and fan
    the batches out to worker *processes* — the second scheduling level
    under the chip-level pool, which is what lets a single-chip campaign
    saturate a multi-core machine.

    Everything here is **execution-only**: per-slice work is pure per
    slice and the shard merge is index-ordered, so results are
    bit-identical to ``workers=1`` for every batch size, ordering and
    worker count — which is why the plan is excluded from
    :meth:`PipelineConfig.cache_token`.
    """

    #: enable slice-level sharding of the per-slice stages
    slices: bool = False
    #: slices per shard batch; ``None`` → auto (~2 batches per worker)
    batch: int | None = None
    #: ``"contiguous"`` batches runs of adjacent slices (best payload
    #: locality); ``"striped"`` deals slices round-robin so a cost
    #: gradient along the stack load-balances evenly.  Merge order is
    #: by slice index either way — the choice never affects results.
    ordering: str = "contiguous"
    #: ceiling on the bytes of shard payloads in flight at once; the
    #: submitter blocks on the oldest outstanding batch when exceeded
    #: (backpressure so a huge stack cannot queue itself entirely into
    #: pool pickle buffers)
    max_inflight_bytes: int = 256 * 1024 * 1024
    #: shard worker processes; ``None`` → the campaign assigns the
    #: workers left over after chip-level fan-out
    workers: int | None = None
    #: how batch payloads cross the pool boundary: ``"shm"`` publishes
    #: large ndarrays into shared-memory segments and ships tiny headers
    #: (see :mod:`repro.runtime.dataplane`; falls back to pickle when
    #: shared memory is unavailable), ``"pickle"`` is the classic
    #: serialize-through-the-pipe path.  Execution-only: results are
    #: bit-identical either way.
    data_plane: str = "shm"
    #: arrays below this byte count stay inline in the batch pickle even
    #: on the shm plane (segment setup costs more than it saves)
    shm_min_bytes: int = 16 * 1024
    #: fuse the downstream per-slice stages (denoise, QC metrics) into
    #: the acquire imaging pool trip so each slice crosses the pool
    #: boundary once instead of once per stage.  Execution-only: the
    #: fused kernels are the same per-slice functions.
    fuse: bool = True

    def __post_init__(self) -> None:
        if self.batch is not None and self.batch < 1:
            raise PipelineError("shard batch must be >= 1 (or None for auto)")
        if self.ordering not in _SHARD_ORDERINGS:
            raise PipelineError(
                f"unknown shard ordering {self.ordering!r} "
                f"(expected one of {_SHARD_ORDERINGS})"
            )
        if self.max_inflight_bytes < 1:
            raise PipelineError("max_inflight_bytes must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise PipelineError("shard workers must be >= 1 (or None for auto)")
        if self.data_plane not in _DATA_PLANES:
            raise PipelineError(
                f"unknown data plane {self.data_plane!r} "
                f"(expected one of {_DATA_PLANES})"
            )
        if self.shm_min_bytes < 1:
            raise PipelineError("shm_min_bytes must be >= 1")

    @property
    def resolved_workers(self) -> int:
        """The worker count to schedule with (1 until the campaign resolves)."""
        return self.workers if self.workers is not None else 1

    def engaged(self, n_items: int) -> bool:
        """Whether sharding *n_items* would actually fan out."""
        return self.slices and self.resolved_workers > 1 and n_items > 1

    def batch_size(self, n_items: int) -> int:
        """Slices per batch for an *n_items* stack (explicit or auto)."""
        if self.batch is not None:
            return self.batch
        # ~2 batches per worker: enough slack to load-balance uneven
        # batch costs without drowning in per-batch pickle overhead.
        return max(1, -(-n_items // (2 * max(self.resolved_workers, 1))))

    def batches(self, n_items: int) -> list[tuple[int, ...]]:
        """Deterministic slice-index batches for an *n_items* stack.

        A pure function of ``(n_items, batch, ordering, workers)`` — the
        submitter and any replayer always agree on the partition.
        """
        if n_items <= 0:
            return []
        size = self.batch_size(n_items)
        n_batches = -(-n_items // size)
        if self.ordering == "striped":
            return [
                tuple(range(k, n_items, n_batches)) for k in range(n_batches)
            ]
        return [
            tuple(range(lo, min(lo + size, n_items)))
            for lo in range(0, n_items, size)
        ]

#: Map from the legacy ``reverse_engineer_stack`` keywords to config fields.
LEGACY_KWARGS = {
    "denoise_method": "denoise_method",
    "denoise_weight": "denoise_weight",
    "align_search_px": "align_search_px",
}


@dataclass(frozen=True)
class PipelineConfig:
    """Every tunable of the §IV-C post-processing chain, in one object.

    The defaults reproduce the historical behaviour of
    ``reverse_engineer_stack`` exactly.
    """

    #: TV denoiser: ``"chambolle"`` or ``"split_bregman"``.
    denoise_method: str = "chambolle"
    #: ROF fidelity weight λ (larger → smoother).
    denoise_weight: float = 0.08
    #: Iteration override; ``None`` keeps each method's published default.
    denoise_iterations: int | None = None
    #: Early-stopping tolerance for the TV solvers; ``None`` (default)
    #: runs the exact published iteration counts (bit-identical outputs).
    denoise_tol: float | None = None
    #: MI alignment search window (± px).
    align_search_px: int = 4
    #: MI histogram bins.
    align_bins: int = 32
    #: Multi-baseline registration offsets (see :func:`align_stack`).
    align_baselines: tuple[int, ...] = (1, 2, 3)
    #: MI shift regularisation (nats per pixel of shift) — see
    #: :func:`~repro.pipeline.register.align_pair`.
    align_shift_penalty: float = 0.01
    #: ``"exhaustive"`` scores the full ±window; ``"pyramid"`` is the
    #: opt-in coarse-to-fine search (faster, may differ on flat MI
    #: surfaces — result-affecting, so it is part of the cache token).
    align_search_strategy: str = "exhaustive"
    #: Intensity-classification tolerance of the segmentation step
    #: (see :meth:`repro.reveng.features.PlanarFeatures.from_views`).
    segment_tolerance: float = 0.5
    #: Per-slice worker threads inside denoise/align.  Execution detail
    #: only: results are bit-identical for any value, so it is excluded
    #: from :meth:`cache_token`.
    chunk_workers: int = 1
    #: Slice-level sharding of the per-slice stages (acquire imaging,
    #: denoise, QC) over worker processes.  Execution detail only —
    #: excluded from :meth:`cache_token` like ``chunk_workers``.
    shard: ShardPlan = field(default_factory=ShardPlan)

    def __post_init__(self) -> None:
        if self.denoise_method not in _DENOISE_METHODS:
            raise PipelineError(
                f"unknown denoising method {self.denoise_method!r} "
                f"(expected one of {_DENOISE_METHODS})"
            )
        if self.denoise_weight <= 0:
            raise PipelineError("denoise weight must be positive")
        if self.denoise_iterations is not None and self.denoise_iterations < 1:
            raise PipelineError("denoise iterations must be >= 1")
        if self.denoise_tol is not None and self.denoise_tol <= 0:
            raise PipelineError("denoise tolerance must be positive (or None)")
        if self.align_shift_penalty < 0:
            raise PipelineError("shift penalty must be >= 0")
        if self.align_search_strategy not in _SEARCH_STRATEGIES:
            raise PipelineError(
                f"unknown search strategy {self.align_search_strategy!r} "
                f"(expected one of {_SEARCH_STRATEGIES})"
            )
        if self.align_search_px < 1:
            raise PipelineError("alignment search window must be >= 1 px")
        if self.align_bins < 2:
            raise PipelineError("mutual information needs >= 2 bins")
        if not self.align_baselines or any(k < 1 for k in self.align_baselines):
            raise PipelineError("baselines must be a non-empty tuple of positive offsets")
        if not (0.0 < self.segment_tolerance <= 1.0):
            raise PipelineError("segmentation tolerance must be in (0, 1]")
        if self.chunk_workers < 1:
            raise PipelineError("chunk_workers must be >= 1")

    def replaced(self, **changes: Any) -> "PipelineConfig":
        """A copy with *changes* applied (``dataclasses.replace`` sugar)."""
        return replace(self, **changes)

    def denoise_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for :func:`denoise_stack`."""
        kwargs: dict[str, Any] = {
            "method": self.denoise_method,
            "weight": self.denoise_weight,
        }
        if self.denoise_iterations is not None:
            kwargs["iterations"] = self.denoise_iterations
        if self.denoise_tol is not None:
            kwargs["tol"] = self.denoise_tol
        return kwargs

    def align_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for :func:`align_stack`."""
        return {
            "search_px": self.align_search_px,
            "bins": self.align_bins,
            "baselines": self.align_baselines,
            "shift_penalty": self.align_shift_penalty,
            "search_strategy": self.align_search_strategy,
        }

    def cache_token(self) -> dict[str, Any]:
        """The result-affecting parameters, as a canonical plain dict.

        ``chunk_workers`` and ``shard`` are excluded: they change how
        fast (and where) a stage runs, never what it produces.
        ``denoise_tol``, ``align_shift_penalty``
        and ``align_search_strategy`` *are* included — early stopping and
        the pyramid search trade exactness for speed, so their settings
        affect results and must invalidate cached artefacts.
        """
        return {
            "denoise_method": self.denoise_method,
            "denoise_weight": self.denoise_weight,
            "denoise_iterations": self.denoise_iterations,
            "denoise_tol": self.denoise_tol,
            "align_search_px": self.align_search_px,
            "align_bins": self.align_bins,
            "align_baselines": list(self.align_baselines),
            "align_shift_penalty": self.align_shift_penalty,
            "align_search_strategy": self.align_search_strategy,
            "segment_tolerance": self.segment_tolerance,
        }

    @classmethod
    def from_legacy_kwargs(
        cls,
        base: "PipelineConfig | None" = None,
        **legacy: Any,
    ) -> "PipelineConfig":
        """Translate pre-1.1 ``reverse_engineer_stack`` keywords.

        Emits one :class:`DeprecationWarning` naming the migration and the
        removal version; raises ``TypeError`` on keywords that never
        existed.
        """
        unknown = set(legacy) - set(LEGACY_KWARGS)
        if unknown:
            raise TypeError(
                f"unexpected keyword argument(s) {sorted(unknown)}; "
                "pass a PipelineConfig via config= instead"
            )
        if legacy:
            warnings.warn(
                f"keyword(s) {sorted(legacy)} are deprecated; pass "
                "config=PipelineConfig(...) instead (they will be removed "
                "in repro 2.0)",
                DeprecationWarning,
                stacklevel=3,
            )
        base = base or cls()
        return replace(base, **{LEGACY_KWARGS[k]: v for k, v in legacy.items()})


@runtime_checkable
class Stage(Protocol):
    """Common shape of a pipeline stage: data in → data out + notes.

    ``notes`` carries stage-domain metrics (residuals, counts, hours) as a
    flat ``dict[str, float]`` so reports can be merged without caring which
    stage produced which number.
    """

    name: str
    version: str

    def __call__(self, data: Any) -> tuple[Any, dict[str, float]]:
        """Run the stage; return (output, notes)."""
        ...


@dataclass
class DenoiseStage:
    """TV-denoise every slice of a stack (§IV-C)."""

    config: PipelineConfig
    name: str = field(default="denoise", init=False)
    version: str = field(default="1", init=False)

    def __call__(self, data: list[np.ndarray]) -> tuple[list[np.ndarray], dict[str, float]]:
        out = denoise_stack(
            data,
            workers=self.config.chunk_workers,
            shard=self.config.shard,
            **self.config.denoise_kwargs(),
        )
        return out, {"slices": float(len(out))}


@dataclass
class AlignStage:
    """Mutual-information slice alignment (§IV-C).

    The full :class:`AlignmentReport` of the last call is kept on
    :attr:`report`; the returned notes carry its headline floats.
    """

    config: PipelineConfig
    true_drift_px: list[tuple[int, int]] | None = None
    report: AlignmentReport | None = field(default=None, init=False)
    name: str = field(default="align", init=False)
    version: str = field(default="1", init=False)

    def __call__(self, data: list[np.ndarray]) -> tuple[list[np.ndarray], dict[str, float]]:
        aligned, report = align_stack(
            data,
            true_drift_px=self.true_drift_px,
            workers=self.config.chunk_workers,
            **self.config.align_kwargs(),
        )
        self.report = report
        notes = {"slices": float(len(aligned)),
                 "max_residual_px": float(report.max_residual_px())}
        if data:
            notes["residual_fraction"] = report.residual_fraction(data[0].shape[0])
        return aligned, notes


@dataclass
class AssembleStage:
    """Stack aligned cross-sections into an :class:`AlignedVolume`."""

    pixel_nm: float
    slice_thickness_nm: float
    origin_x_nm: float = 0.0
    origin_y_nm: float = 0.0
    name: str = field(default="assemble", init=False)
    version: str = field(default="1", init=False)

    def __call__(self, data: list[np.ndarray]) -> tuple[AlignedVolume, dict[str, float]]:
        volume = assemble_volume(
            data,
            pixel_nm=self.pixel_nm,
            slice_thickness_nm=self.slice_thickness_nm,
            origin_x_nm=self.origin_x_nm,
            origin_y_nm=self.origin_y_nm,
        )
        return volume, {
            "voxels": float(volume.data.size),
            "array_bytes": float(volume.data.nbytes),
        }


@dataclass
class PlanarViewStage:
    """Cross-section → planar point-of-view change (Fig 7d)."""

    name: str = field(default="planar_views", init=False)
    version: str = field(default="1", init=False)

    def __call__(self, data: AlignedVolume) -> tuple[dict, dict[str, float]]:
        views = planar_views(data)
        return views, {
            "layers": float(len(views)),
            "array_bytes": float(sum(v.nbytes for v in views.values())),
        }


@dataclass
class SegmentStage:
    """Intensity classification of planar views into per-layer masks.

    Wraps :meth:`repro.reveng.features.PlanarFeatures.from_views`; imported
    lazily to keep :mod:`repro.pipeline` free of a reveng dependency.
    """

    config: PipelineConfig
    pixel_nm: float
    sem: Any = None
    origin_x_nm: float = 0.0
    origin_y_nm: float = 0.0
    name: str = field(default="segment", init=False)
    version: str = field(default="1", init=False)

    def __call__(self, data: dict) -> tuple[Any, dict[str, float]]:
        from repro.reveng.features import PlanarFeatures

        features = PlanarFeatures.from_views(
            data,
            pixel_nm=self.pixel_nm,
            sem=self.sem,
            origin_x_nm=self.origin_x_nm,
            origin_y_nm=self.origin_y_nm,
            tolerance=self.config.segment_tolerance,
        )
        notes = {"mask_px": float(sum(int(m.sum()) for m in features.masks.values()))}
        return features, notes
