"""Kernel perf trajectory — the fast paths vs their retained references.

Runs the ``repro.perf`` harness on the tiny workload, prints the
per-kernel ns/pixel table, and asserts the two invariants every perf PR
must preserve: all rewritten kernels reproduce their reference outputs
exactly, and the fast paths are not slower than the references on the
alignment kernels (where the structural win is largest).

The full-scale record lives in ``BENCH_pipeline.json`` at the repo root
(regenerate with ``python -m repro.perf``).
"""

from conftest import emit

from repro.perf import render_report, run_benchmarks


def _run():
    return run_benchmarks(scale="tiny", include_campaign=False)


def test_perf_kernels(benchmark):
    report = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("pipeline kernel perf (tiny scale)", render_report(report))
    checked = [k for k in report.kernels if k.outputs_match is not None]
    assert checked and all(k.outputs_match for k in checked)
    # The bincount rewrite wins even at toy sizes; the TV pools need the
    # bench_pipeline_alignment-scale stack to amortise (see the committed
    # BENCH_pipeline.json for the >=5x / >=1.5x at-scale record).
    assert report.kernel("align_stack").speedup > 1.0
    assert report.kernel("align_pair").speedup > 1.0
    assert report.pipeline["seconds"] > 0
