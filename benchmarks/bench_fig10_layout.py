"""Fig 10 — the reverse-engineered layout organisation.

Checks the §V-C layout facts on the generated+recovered regions and
reports the per-chip SA-height decomposition the overhead formulas use.
"""

from conftest import emit

from repro.core.chips import CHIPS
from repro.core.report import render_table
from repro.layout.elements import Orientation, TransistorKind
from repro.reveng import reverse_engineer_cell


def _decompose():
    rows = []
    for c in CHIPS.values():
        t = c.transistors
        rows.append(
            [
                c.chip_id,
                c.topology.value,
                f"{c.sa_height_um():.2f}",
                f"{t[TransistorKind.NSA].eff_w:.0f}",
                f"{t[TransistorKind.PSA].eff_w:.0f}",
                f"{t[TransistorKind.PRECHARGE].eff_l:.0f}",
                f"{t[TransistorKind.ISOLATION].eff_l:.0f}" if c.has(TransistorKind.ISOLATION) else "-",
                f"{c.geometry.transition_nm:.0f}",
            ]
        )
    return rows


def test_fig10_layout(benchmark, classic_region_small):
    rows = benchmark(_decompose)
    emit(
        "Fig 10: SA region organisation (per-chip element budget, nm)",
        render_table(
            ["chip", "topology", "SA height um", "nSA W*", "pSA W*",
             "pre L*", "iso L*", "MAT transition"],
            rows,
        )
        + "\n(* effective sizes; latch classes cost W along X, common-gate "
        "classes cost L — §V-C)",
    )

    # The generated region embodies the same facts; re-verify through RE.
    result = reverse_engineer_cell(classic_region_small)
    devices = result.extracted.devices
    functional = result.classification.functional

    # Two stacked SAs: devices split between the two tiles along X.
    xs = [d.centroid_nm[0] for d in devices.values()]
    mid = (min(xs) + max(xs)) / 2
    left = sum(1 for x in xs if x < mid)
    right = len(xs) - left
    assert abs(left - right) <= 2

    # Common-gate devices recovered with region-spanning gates.
    from repro.reveng.classify import TransistorClass

    for name, cls in functional.items():
        if cls in (TransistorClass.PRECHARGE, TransistorClass.EQUALIZER):
            assert devices[name].gate_span_fraction > 0.6

    # Ground-truth orientations follow §V-C.
    for t in classic_region_small.transistors:
        if t.kind.is_latch:
            assert t.orientation is Orientation.WIDTH_ALONG_X
        elif t.kind.is_common_gate:
            assert t.orientation is Orientation.WIDTH_ALONG_Y
