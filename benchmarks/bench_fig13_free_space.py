"""Fig 13 — no free space for new bitlines in the MAT (I1) or SA (I2).

Probes the generated ground-truth layouts with the DRC-based free-track
counter: at minimum pitch, zero additional bitline tracks fit.
"""

from conftest import emit

from repro.core.dcc import dcc_area_factor, naive_dcc_overhead, dcc_chip_overhead
from repro.layout import DesignRules, free_track_count, generate_mat_edge
from repro.layout.design_rules import occupancy_report
from repro.layout.elements import Layer
from repro.core.report import percent, render_table


def _probe(classic_region):
    rules = DesignRules.for_feature_size("probe", 18.0)
    rows = []

    # I2: the SA region's bitline corridor.
    box = classic_region.bounding_box()
    # Probe the first lane's corridor across the region (Y-running tracks
    # would be new bitlines crossing the SA region).
    report_sa = occupancy_report(classic_region, rules, Layer.METAL1, box)
    rows.append(["SA region (I2)", percent(report_sa["occupancy"]),
                 f"{report_sa['free_tracks']:.0f}"])

    # I1: the MAT edge.
    mat = generate_mat_edge(n_bitlines=12, n_rows=10, feature_nm=18.0)
    mat_box = mat.bounding_box()
    report_mat = occupancy_report(mat, rules, Layer.METAL1, mat_box)
    rows.append(["MAT area (I1)", percent(report_mat["occupancy"]),
                 f"{report_mat['free_tracks']:.0f}"])
    return rows, report_sa, report_mat


def test_fig13(benchmark, classic_region_small):
    rows, report_sa, report_mat = benchmark(_probe, classic_region_small)
    emit(
        "Fig 13: free space for new bitlines",
        render_table(["area", "M1 occupancy", "free min-pitch tracks"], rows)
        + "\n\nconsequence (I1): a dual-contact cell needs "
        f"{dcc_area_factor():.0f}x the cell area (6F^2 -> 12F^2);\n"
        f"assumed overhead {percent(naive_dcc_overhead('A4'), 2)} vs real "
        f"{percent(dcc_chip_overhead('A4'))} of the A4 die",
    )
    # No new bitline track fits in the MAT.
    assert report_mat["free_tracks"] == 0.0
    # The MAT bitline corridor is fully utilised.
    assert report_mat["utilisation"] > 0.7
