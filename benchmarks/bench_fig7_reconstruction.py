"""Fig 7/8 — imaging-system reconstruction capability.

The end-to-end demonstration of §IV-D: acquire a slice stack from a
C5-like region, run the full §IV-C pipeline, and verify the planar views
resolve wires, vias and transistors (feature counts against ground truth).
"""

import pytest
from conftest import emit

from repro.core.report import render_table
from repro.imaging import FibSemCampaign, SemParameters, acquire_stack, voxelize
from repro.layout.elements import Layer
from repro.pipeline import align_stack, assemble_volume, denoise_stack, planar_views
from repro.reveng.features import PlanarFeatures


@pytest.fixture(scope="module")
def reconstruction(classic_region_small):
    volume = voxelize(classic_region_small, voxel_nm=6.0)
    stack = acquire_stack(
        volume,
        FibSemCampaign(slice_thickness_nm=12.0, sem=SemParameters(dwell_time_us=6.0)),
    )
    return classic_region_small, volume, stack


def _reconstruct(args):
    cell, volume, stack = args
    denoised = denoise_stack(stack.images)
    aligned, _report = align_stack(denoised, true_drift_px=stack.true_drift_px)
    avol = assemble_volume(
        aligned, pixel_nm=stack.pixel_nm, slice_thickness_nm=stack.slice_thickness_nm,
        origin_x_nm=volume.origin_x_nm, origin_y_nm=volume.origin_y_nm,
    )
    views = planar_views(avol)
    return PlanarFeatures.from_views(
        views, pixel_nm=stack.pixel_nm, sem=stack.sem,
        origin_x_nm=volume.origin_x_nm, origin_y_nm=volume.origin_y_nm,
    )


def test_fig7_reconstruction(benchmark, reconstruction):
    cell, volume, stack = reconstruction
    features = benchmark.pedantic(_reconstruct, args=(reconstruction,), rounds=1, iterations=1)
    truth = PlanarFeatures.from_cell(cell, pixel_nm=6.0)

    rows = []
    fidelity = {}
    for layer in (Layer.METAL1, Layer.METAL2, Layer.GATE, Layer.CONTACT, Layer.VIA1, Layer.ACTIVE):
        _l, got = features.components(layer)
        _l2, expected = truth.components(layer)
        a, b = features.masks[layer], truth.masks[layer]
        n = min(a.shape[1], b.shape[1])
        m = min(a.shape[0], b.shape[0])
        inter = (a[:m, :n] & b[:m, :n]).sum()
        union = (a[:m, :n] | b[:m, :n]).sum()
        iou = inter / union if union else 1.0
        fidelity[layer] = (got, expected, iou)
        rows.append([layer.name, str(expected), str(got), f"{iou:.2f}"])

    emit(
        "Fig 7: planar reconstruction capability (C5-like classic region)",
        render_table(["layer", "true components", "recovered", "mask IoU"], rows)
        + f"\n\nslices: {len(stack)}, beam time: {stack.beam_time_hours():.2f} h",
    )
    # Wires and vias are individually resolvable.
    for layer in (Layer.METAL1, Layer.METAL2, Layer.VIA1):
        got, expected, iou = fidelity[layer]
        assert got == pytest.approx(expected, rel=0.25), layer
        # Vias are ~4 px wide, so a one-pixel halo already costs ~0.4 IoU.
        floor = 0.5 if layer is Layer.VIA1 else 0.6
        assert iou > floor, layer
