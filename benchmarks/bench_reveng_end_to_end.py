"""§V end-to-end — reverse engineering fidelity on both topologies.

The reproduction's headline: from simulated FIB/SEM stacks, the workflow
recovers the deployed topology (classic vs OCSA) with exact circuit
isomorphism, every transistor class, and W/L within rasterisation error.
"""

import pytest
from conftest import emit

from repro.circuits.topologies import SaTopology
from repro.core.report import render_table
from repro.imaging import FibSemCampaign, SemParameters, acquire_stack, voxelize
from repro.reveng import reverse_engineer_stack


def _run(cell):
    volume = voxelize(cell, voxel_nm=6.0)
    stack = acquire_stack(
        volume,
        FibSemCampaign(slice_thickness_nm=12.0, sem=SemParameters(dwell_time_us=6.0)),
    )
    return reverse_engineer_stack(
        stack, origin_x_nm=volume.origin_x_nm, origin_y_nm=volume.origin_y_nm, truth=cell
    )


@pytest.mark.parametrize("topology", ["classic", "ocsa"])
def test_end_to_end(benchmark, topology, classic_region_small, ocsa_region_small):
    cell = classic_region_small if topology == "classic" else ocsa_region_small
    result = benchmark.pedantic(_run, args=(cell,), rounds=1, iterations=1)

    rows = [
        ["recovered topology", result.topology.value, topology],
        ["lanes matched / exact", f"{result.lanes_matched} / {result.all_exact}", "2 / True"],
        ["devices found", str(result.validation.device_count_found),
         str(result.validation.device_count_expected)],
        ["max W/L class error", f"{result.validation.max_relative_error():.1%}", "< 35%"],
        ["alignment residual", f"{result.pipeline_notes['alignment_residual_fraction']:.3%}",
         "< 0.77%"],
    ]
    emit(f"§V end-to-end reverse engineering ({topology})",
         render_table(["metric", "measured", "expected"], rows))

    assert result.topology is SaTopology(topology)
    assert result.lanes_matched == 2
    assert result.all_exact
    assert result.validation.complete
    assert result.validation.max_relative_error() < 0.35
