"""§V end-to-end — reverse engineering fidelity on both topologies.

The reproduction's headline: from simulated FIB/SEM stacks, the workflow
recovers the deployed topology (classic vs OCSA) with exact circuit
isomorphism, every transistor class, and W/L within rasterisation error.

Runs through the campaign runtime (``repro.runtime.run_campaign``) — the
same stage chain as ``reverse_engineer_stack``, plus per-stage wall-time
instrumentation that the bench prints alongside the fidelity table.
"""

import pytest
from conftest import emit

from repro.circuits.topologies import SaTopology
from repro.core.report import render_table
from repro.runtime import ChipJob, run_campaign


def _run(topology):
    job = ChipJob.synthetic(f"bench_{topology}", topology, n_pairs=2)
    report = run_campaign([job], workers=1)
    return report


@pytest.mark.parametrize("topology", ["classic", "ocsa"])
def test_end_to_end(benchmark, topology):
    report = benchmark.pedantic(_run, args=(topology,), rounds=1, iterations=1)
    run = report.chips[f"bench_{topology}"]
    result = run.result

    rows = [
        ["recovered topology", result.topology.value, topology],
        ["lanes matched / exact", f"{result.lanes_matched} / {result.all_exact}", "2 / True"],
        ["devices found", str(result.validation.device_count_found),
         str(result.validation.device_count_expected)],
        ["max W/L class error", f"{result.validation.max_relative_error():.1%}", "< 35%"],
        ["alignment residual", f"{result.pipeline_notes['alignment_residual_fraction']:.3%}",
         "< 0.77%"],
    ]
    rows += [
        [f"stage time: {s.stage}", f"{s.seconds:.2f}s", s.disposition]
        for s in run.stages
    ]
    emit(f"§V end-to-end reverse engineering ({topology})",
         render_table(["metric", "measured", "expected"], rows))

    assert result.topology is SaTopology(topology)
    assert result.lanes_matched == 2
    assert result.all_exact
    assert result.validation.complete
    assert result.validation.max_relative_error() < 0.35
