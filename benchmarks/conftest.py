"""Shared helpers for the per-table/figure benchmarks.

Every bench regenerates the rows/series of one paper artefact (printed via
``report_lines``) and asserts the headline *shape* so the harness doubles
as a regression gate.  Run with ``pytest benchmarks/ --benchmark-only``;
add ``-s`` to see the regenerated tables.
"""

from __future__ import annotations

import pytest


def emit(title: str, body: str) -> None:
    """Print a regenerated artefact with a recognisable banner."""
    bar = "=" * max(len(title), 20)
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture(scope="session")
def ocsa_region_small():
    from repro.layout import SaRegionSpec, generate_sa_region

    return generate_sa_region(SaRegionSpec(name="bench_ocsa", topology="ocsa", n_pairs=2))


@pytest.fixture(scope="session")
def classic_region_small():
    from repro.layout import SaRegionSpec, generate_sa_region

    return generate_sa_region(SaRegionSpec(name="bench_classic", topology="classic", n_pairs=2))
