"""§VI-D at the command level — out-of-spec experiments per topology.

Runs the same violated command traces against a classic-SA bank and an
OCSA bank whose timings derive from the analog simulations, and reports
where the outcomes diverge — the hazard the paper warns about.
"""

import pytest
from conftest import emit

from repro.core.report import render_table
from repro.dram import (
    charge_sharing_window,
    multi_row_activation_experiment,
    truncated_activation_experiment,
)
from repro.dram.out_of_spec import divergence_sweep


def test_dram_out_of_spec(benchmark):
    results = benchmark.pedantic(divergence_sweep, rounds=1, iterations=1)
    window = charge_sharing_window()

    rows = [
        [f"{r.parameter_ns:.1f} ns", r.classic_outcome, r.ocsa_outcome,
         "DIVERGES" if r.diverges else ""]
        for r in results
    ]
    emit(
        "§VI-D: truncated activation (ACT→PRE) outcome per topology",
        render_table(["ACT→PRE", "classic chip", "OCSA chip", ""], rows)
        + f"\n\ncharge-sharing windows: classic ≥ {window['classic_min_t1_ns']:.1f} ns, "
        f"OCSA ≥ {window['ocsa_min_t1_ns']:.1f} ns "
        f"(hazard window: {window['hazard_window_ns']:.1f} ns)",
    )

    # Somewhere in the sweep the two chips disagree.
    assert any(r.diverges for r in results)
    # The OCSA charge-sharing window opens later.
    assert window["hazard_window_ns"] > 1.0

    # The ComputeDRAM-style multi-row trick: calibrated on a classic chip,
    # it silently stops working on an OCSA chip.
    t1 = (window["classic_min_t1_ns"] + window["ocsa_min_t1_ns"]) / 2
    trick = multi_row_activation_experiment(t1)
    assert trick.classic_outcome == "rows_shared"
    assert trick.ocsa_outcome == "no_sharing"

    # And a characterisation study that truncates activations mid-window
    # reads corrupted cells on one vendor and pristine cells on another.
    probe = truncated_activation_experiment(t1)
    assert probe.classic_outcome == "corrupted"
    assert probe.ocsa_outcome == "untouched"


def test_in_dram_compute_portability(benchmark):
    """AMBIT-style AND/OR via 3-row majority: calibrated once, run on all
    six chips' topologies — works on the classic half, silently fails on
    the OCSA half until recalibrated with HiFi-DRAM's timing data."""
    from repro.circuits.topologies import SaTopology
    from repro.core.chips import CHIPS
    from repro.dram import Bank, in_dram_and

    a = (1, 0, 1, 1, 0, 0, 1, 0)
    b = (1, 1, 0, 1, 0, 1, 0, 0)

    def run():
        rows = []
        for chip in CHIPS.values():
            bank = Bank(topology=chip.topology)
            naive = in_dram_and(bank, a, b)  # classic-calibrated t1
            recal = in_dram_and(
                Bank(topology=chip.topology), a, b,
                t1_ns=bank.timings.t_charge_share * 1.5,
            )
            rows.append([chip.chip_id, chip.topology.value,
                         "works" if naive.correct else "fails",
                         "works" if recal.correct else "fails"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "In-DRAM AND on all six chips (classic-calibrated vs recalibrated)",
        render_table(["chip", "topology", "naive calibration", "HiFi recalibration"], rows),
    )
    outcomes = {r[0]: (r[2], r[3]) for r in rows}
    for chip_id in ("B4", "C4", "C5"):
        assert outcomes[chip_id] == ("works", "works")
    for chip_id in ("A4", "A5", "B5"):
        assert outcomes[chip_id] == ("fails", "works")
