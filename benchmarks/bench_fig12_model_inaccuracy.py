"""Fig 12 — average and maximum inaccuracies of REM and CROW.

W/L ratios plus separate width and length errors, against DDR4 chips and
(portability, "¥") DDR5 chips.
"""

import pytest
from conftest import emit

from repro.core.model_accuracy import all_reports, worst_case_factor
from repro.core.report import render_table


def _rows():
    rows = []
    for report in all_reports():
        for attr, label in (
            ("wl_error", "W/L"),
            ("width_error", "width"),
            ("length_error", "length"),
        ):
            value, who = report.maximum(attr)
            rows.append(
                [
                    report.model,
                    report.generation,
                    label,
                    f"{report.average(attr) * 100:.0f}%",
                    f"{value * 100:.0f}%",
                    f"{who.chip_id}/{who.kind.value}",
                ]
            )
    return rows


def test_fig12(benchmark):
    rows = benchmark(_rows)
    emit(
        "Fig 12: model inaccuracies vs measured transistors",
        render_table(["model", "gen", "metric", "avg", "max", "worst at"], rows)
        + f"\n\nworst-case factor: {worst_case_factor():.1f}x (abstract: 'up to 9x')",
    )
    table = {(r[0], r[1], r[2]): (r[3], r[4], r[5]) for r in rows}

    # CROW DDR4: avg W/L ≈ 236 %, max 562 % at C4's precharge.
    avg, worst, who = table[("CROW", "DDR4", "W/L")]
    assert float(avg.rstrip("%")) == pytest.approx(236, abs=35)
    assert float(worst.rstrip("%")) == pytest.approx(562, abs=30)
    assert who == "C4/precharge"
    # CROW widths max ≈938 % at C4's precharge.
    _avg, worst, who = table[("CROW", "DDR4", "width")]
    assert float(worst.rstrip("%")) == pytest.approx(938, abs=30)
    # REM lengths: avg ≈31 %, max ≈101 % at C4's equalizer.
    avg, worst, who = table[("REM", "DDR4", "length")]
    assert float(avg.rstrip("%")) == pytest.approx(31, abs=8)
    assert float(worst.rstrip("%")) == pytest.approx(101, abs=10)
    assert who == "C4/equalizer"
    # CROW is the more inaccurate model on average.
    assert float(table[("CROW", "DDR4", "W/L")][0].rstrip("%")) > float(
        table[("REM", "DDR4", "W/L")][0].rstrip("%")
    )
