"""§VI-D — out-of-spec DRAM experiments meet OCSA chips.

Two behaviours that break classic-SA assumptions:
1. charge sharing is delayed until after the offset-cancellation phase;
2. bitlines transiently connect to diode-connected transistors during the
   OC phase, so they are not simply 'latched or precharged'.
"""

import numpy as np
import pytest
from conftest import emit

from repro.analog import SenseAmpBench, SenseAmpConfig, charge_sharing_onset
from repro.circuits.topologies import SaTopology
from repro.core.report import render_table


def _measure():
    onset_classic = charge_sharing_onset(SaTopology.CLASSIC)
    onset_ocsa = charge_sharing_onset(SaTopology.OCSA)

    # Bitline disturbance before the wordline ever rises (OC phase).
    bench = SenseAmpBench(SenseAmpConfig(topology=SaTopology.OCSA))
    out = bench.run(data=1)
    timeline = out.timeline
    oc_end = timeline.event("offset_cancellation").end_ns
    wl = timeline.event("charge_sharing").start_ns
    pre_wl = out.result.time_ns < wl
    bl_excursion = float(
        np.max(np.abs(out.result.voltages["BL"][pre_wl] - out.config.vpre))
    )

    classic_bench = SenseAmpBench(SenseAmpConfig(topology=SaTopology.CLASSIC))
    classic_out = classic_bench.run(data=1)
    wl_c = classic_out.timeline.event("charge_sharing").start_ns
    pre_wl_c = classic_out.result.time_ns < wl_c - 0.2
    bl_excursion_classic = float(
        np.max(np.abs(classic_out.result.voltages["BL"][pre_wl_c] - classic_out.config.vpre))
    )
    return onset_classic, onset_ocsa, bl_excursion, bl_excursion_classic, oc_end


def test_out_of_spec_behaviour(benchmark):
    onset_classic, onset_ocsa, exc_ocsa, exc_classic, oc_end = benchmark(_measure)
    rows = [
        ["charge-sharing onset (classic)", f"{onset_classic:.2f} ns", "at ACT + tWL"],
        ["charge-sharing onset (OCSA)", f"{onset_ocsa:.2f} ns", "delayed past OC phase"],
        ["pre-WL bitline excursion (classic)", f"{exc_classic * 1000:.1f} mV", "~0"],
        ["pre-WL bitline excursion (OCSA)", f"{exc_ocsa * 1000:.1f} mV",
         "diode connection during OC"],
    ]
    emit("§VI-D: out-of-spec experiment hazards on OCSA chips",
         render_table(["behaviour", "measured", "interpretation"], rows))

    # 1. Delay: an experiment timed for the classic onset misses the OCSA one.
    assert onset_ocsa > onset_classic + 1.0
    assert onset_ocsa > oc_end
    # 2. The OCSA bitline moves measurably before the wordline; the classic
    #    one does not.
    assert exc_ocsa > 3 * exc_classic
    assert exc_ocsa > 0.005
