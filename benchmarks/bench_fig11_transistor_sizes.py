"""Fig 11 — measured pSA/nSA transistor sizes for all chips and REM.

CROW is omitted "as severely out the range", as in the paper.
"""

from conftest import emit

from repro.core.model_accuracy import fig11_series
from repro.core.report import render_table


def _rows():
    rows = []
    for name, entry in fig11_series().items():
        for element, (w, w_spread, l, l_spread) in entry.items():
            rows.append(
                [
                    name,
                    element,
                    f"{w:.1f} +/- {w_spread:.1f}",
                    f"{l:.1f} +/- {l_spread:.1f}",
                    f"{w / l:.2f}",
                ]
            )
    return rows


def test_fig11(benchmark):
    rows = benchmark(_rows)
    emit(
        "Fig 11: pSA/nSA dimensions (nm), all chips + REM (CROW omitted)",
        render_table(["series", "element", "W (nm)", "L (nm)", "W/L"], rows),
    )
    assert len(rows) == 7 * 2  # six chips + REM, two elements each
    by_series = {}
    for r in rows:
        by_series.setdefault(r[0], {})[r[1]] = float(r[2].split()[0])
    # pSA narrower than nSA everywhere (the §V-A step-viii heuristic).
    for series, elems in by_series.items():
        assert elems["pSA"] < elems["nSA"], series
    # DDR5 latch devices are smaller than same-vendor DDR4 ones.
    assert by_series["A5"]["nSA"] < by_series["A4"]["nSA"]
