"""Fig 9b — OCSA events: offset cancellation, delayed charge sharing,
pre-sensing, restore.

Also reports the sense-margin comparison that motivates the OCSA
deployment: the maximum latch Vt mismatch each topology survives.
"""

import pytest
from conftest import emit

from repro.analog import (
    SenseAmpBench,
    SenseAmpConfig,
    charge_sharing_onset,
    worst_case_offset_tolerance,
)
from repro.circuits.topologies import SaTopology
from repro.core.report import render_table


@pytest.fixture(scope="module")
def outcome():
    bench = SenseAmpBench(SenseAmpConfig(topology=SaTopology.OCSA))
    return bench.run(data=1, stop_after_restore=False)


def _sample(outcome):
    res = outcome.result
    rows = []
    for event in outcome.timeline.events:
        t = min(event.end_ns - 0.2, res.time_ns[-1])
        rows.append(
            [
                event.name,
                f"{event.start_ns:.1f}-{event.end_ns:.1f} ns",
                f"{res.at('BL', t):.3f}",
                f"{res.at('BLB', t):.3f}",
                f"{res.at('SABL', t):.3f}",
                f"{res.at('SABLB', t):.3f}",
                f"{res.at('CELL', t):.3f}",
            ]
        )
    return rows


def test_fig9_ocsa_events(benchmark, outcome):
    rows = benchmark(_sample, outcome)
    tol_classic = worst_case_offset_tolerance(SaTopology.CLASSIC, resolution=0.01)
    tol_ocsa = worst_case_offset_tolerance(SaTopology.OCSA, resolution=0.01)
    emit(
        "Fig 9b: OCSA activation events (data=1)",
        render_table(
            ["event", "window", "BL", "BLB", "SABL", "SABLB", "CELL"], rows
        )
        + f"\n\noffset tolerance: classic {tol_classic * 1000:.0f} mV, "
        f"OCSA {tol_ocsa * 1000:.0f} mV "
        f"(the compensation gain that drove deployment)",
    )

    names = [r[0] for r in rows]
    assert names == [
        "offset_cancellation", "charge_sharing", "pre_sensing",
        "latch_restore", "precharge_equalize",
    ]
    # The OCSA tolerates more latch mismatch than the classic SA.
    assert tol_ocsa > tol_classic
    # Charge sharing is delayed relative to the classic timeline (§VI-D).
    assert charge_sharing_onset(SaTopology.OCSA) > charge_sharing_onset(SaTopology.CLASSIC)
