"""Table II — research inaccuracies, overhead error and porting cost.

Regenerates every row via the Appendix B formulas over the six-chip
dataset and checks the headline factors.
"""

import pytest
from conftest import emit

from repro.core.overheads import table2_rows
from repro.core.report import render_table


def _rows():
    rows = []
    for result in table2_rows():
        p = result.paper
        rows.append(
            [
                p.title,
                ",".join(i.name[1] for i in p.inaccuracies),
                result.error_str,
                result.porting_str,
                str(p.ddr),
                f"'{p.venue_year % 100}",
            ]
        )
    return rows


def test_table2(benchmark):
    rows = benchmark(_rows)
    emit(
        "Table II: research inaccuracies, overhead error, portability cost",
        render_table(["Research", "Inacc.", "Error", "Port. Cost", "DDR", "Yr."], rows),
    )
    by_title = {r[0]: r for r in rows}

    # DDR3 papers have no applicable overhead error.
    for title in ("CHARM", "R.B. DEC.", "AMBIT", "ELP2IM"):
        assert by_title[title][2] == "N/A"

    def err(title):
        return float(by_title[title][2].rstrip("x"))

    def port(title):
        return float(by_title[title][3].rstrip("x"))

    # Headline factors (paper values in comments).
    assert err("DrACC") == pytest.approx(35, rel=0.15)        # 35x
    assert err("GraphiDe") == pytest.approx(54, rel=0.15)     # 54x
    assert err("In-Mem.Lowcost.") == pytest.approx(70, rel=0.15)  # 70x
    assert err("CLR-DRAM") == pytest.approx(22, rel=0.15)     # 22x
    assert err("SIMDRAM") == pytest.approx(70, rel=0.15)      # 70x
    assert err("REGA") == pytest.approx(8, rel=0.25)          # 8x
    assert err("CoolDRAM") == pytest.approx(175, rel=0.1)     # 175x
    assert err("Nov. DRAM") < 1.0                             # 0.49x
    assert err("PF-DRAM") < 1.0                               # 0.35x
    # Porting costs keep the paper's sign structure.
    assert port("AMBIT") > 20                                 # 68x
    assert port("ELP2IM") > 20                                # 90x
    assert port("R.B. DEC.") < 0                              # -0.25x
    assert port("CHARM") > 0                                  # 0.29x
