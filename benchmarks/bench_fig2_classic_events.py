"""Fig 2c — classic SA events: charge sharing, latch & restore, precharge.

Simulates a full activation/precharge cycle on the classic SA and reports
the bitline trajectory at each event boundary.
"""

import pytest
from conftest import emit

from repro.analog import SenseAmpBench, SenseAmpConfig
from repro.analog.events import classic_activation_timeline
from repro.circuits.topologies import SaTopology
from repro.core.report import render_table


@pytest.fixture(scope="module")
def outcome():
    bench = SenseAmpBench(SenseAmpConfig(topology=SaTopology.CLASSIC))
    return bench.run(data=1, stop_after_restore=False)


def _sample(outcome):
    res = outcome.result
    timeline = outcome.timeline
    rows = []
    for event in timeline.events:
        t = min(event.end_ns - 0.2, res.time_ns[-1])
        rows.append(
            [
                event.name,
                f"{event.start_ns:.1f}-{event.end_ns:.1f} ns",
                f"{res.at('BL', t):.3f} V",
                f"{res.at('BLB', t):.3f} V",
                f"{res.at('CELL', t):.3f} V",
            ]
        )
    return rows


def test_fig2_classic_events(benchmark, outcome):
    rows = benchmark(_sample, outcome)
    emit(
        "Fig 2c: classic SA activation events (data=1)",
        render_table(["event", "window", "BL", "BLB", "CELL"], rows),
    )
    timeline = outcome.timeline
    res = outcome.result
    vpre = outcome.config.vpre
    vdd = outcome.config.vdd

    # (1) charge sharing perturbs BL above Vpre but below full rail.
    t_cs = timeline.event("charge_sharing").end_ns - 0.2
    assert vpre + 0.02 < res.at("BL", t_cs) < vpre + 0.2
    # (2) latching & restore drives full rails and recharges the cell.
    t_res = timeline.event("latch_restore").end_ns - 0.2
    assert res.at("BL", t_res) > 0.9 * vdd
    assert res.at("CELL", t_res) > 0.9 * vdd
    # (3) precharge & equalize returns both bitlines to Vpre.
    t_pre = timeline.t_end_ns - 0.2
    assert res.at("BL", t_pre) == pytest.approx(vpre, abs=0.08)
    assert res.at("BLB", t_pre) == pytest.approx(vpre, abs=0.08)
