"""Appendix A (Eq. 1) — the cost of doubling bitlines at halved width.

Regenerates the 33 % SA extension and the ≈21 % B5 chip overhead, and
sweeps the width/distance ratio.
"""

import pytest
from conftest import emit

from repro.core.bitline_scaling import (
    bitline_halving_extension,
    m2_slack_factor,
    sa_extension_eq1,
)
from repro.analog.bitline_parasitics import shrink_report
from repro.core.chips import CHIPS
from repro.core.report import percent, render_table


def _rows():
    rows = []
    for chip_id in CHIPS:
        result = bitline_halving_extension(chip_id)
        rows.append(
            [
                chip_id,
                percent(result["sa_extension"]),
                percent(result["mat_plus_sa_fraction"]),
                percent(result["chip_overhead"]),
                f"{m2_slack_factor(chip_id):.0f}x",
            ]
        )
    return rows


def test_appendix_a(benchmark):
    rows = benchmark(_rows)
    sweep = {f"Bw/d={r:.1f}": sa_extension_eq1(r) for r in (1.0, 2.0, 3.0, 4.0)}
    electrical = shrink_report()
    emit(
        "Appendix A / Eq. 1: bitline halving overhead",
        render_table(
            ["chip", "SA ext (Eq.1)", "MAT+SA frac", "chip overhead", "M2/M1 slack"],
            rows,
        )
        + "\n\nextension sweep: "
        + ", ".join(f"{k}: {v:.0%}" for k, v in sweep.items())
        + "\n\nelectrical impact of the halved bitline (Appendix A): "
        + f"R x{electrical['resistance_factor']:.1f}, "
        + f"settling x{electrical['settling_factor']:.1f}, "
        + f"crosstalk {electrical['crosstalk_before']:.0%} -> {electrical['crosstalk_after']:.0%}",
    )
    # Shrinking doubles R and slows settling — the electrical reasons the
    # appendix gives for why vendors do not just shrink bitlines.
    assert electrical["resistance_factor"] == pytest.approx(2.0)
    assert electrical["settling_factor"] > 1.2
    by_chip = {r[0]: r for r in rows}
    # Eq. 1 at the paper's Bw ≈ 2d: 33 %.
    assert sa_extension_eq1() == pytest.approx(1 / 3)
    # B5: ≈21 % chip overhead.
    b5_overhead = float(by_chip["B5"][3].rstrip("%")) / 100
    assert b5_overhead == pytest.approx(0.21, abs=0.04)
    # Only vendor A has the documented M2 slack.
    assert by_chip["A4"][4] == "8x" and by_chip["C4"][4] == "0x"
