"""Campaign runtime — parallel fan-out, determinism, and stage caching.

The paper's §IV campaigns were strictly serial: six chips, each >24 h of
FIB/SEM plus post-processing, one at a time.  The campaign runtime removes
the software half of that serialism.  This bench runs a four-chip
campaign three ways and checks the three headline properties:

* **determinism** — ``workers=4`` produces byte-identical topologies and
  measurement tables to the serial run;
* **speedup** — on a multi-core host the parallel run is ≥2× faster
  (chips share nothing, so fan-out is near-linear; on a single-CPU host
  the ratio is reported but not asserted);
* **incrementality** — a warm-cache re-run executes zero stages: every
  imaging and pipeline stage is satisfied from the content-addressed
  cache, verified through the ``CampaignReport`` counters.
"""

import os
import pickle

from conftest import emit

from repro.core.report import render_table
from repro.pipeline import PipelineConfig
from repro.runtime import CampaignReport, ChipJob, run_campaign

#: Cheap pipeline settings so the bench exercises orchestration, not TV
#: iteration counts.  Fidelity at full settings is bench_reveng_end_to_end.
FAST = PipelineConfig(denoise_iterations=10, align_search_px=2, align_baselines=(1, 2))

EXPECTED = {"fab-a": "classic", "fab-b": "ocsa", "fab-c": "classic", "fab-d": "ocsa"}


def _jobs():
    return [
        ChipJob.synthetic(name, topology, n_pairs=1)
        for name, topology in EXPECTED.items()
    ]


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_parallel_campaign(benchmark, tmp_path):
    cache = tmp_path / "stage-cache"

    serial = run_campaign(_jobs(), config=FAST, workers=1, cache_dir=None)
    parallel = benchmark.pedantic(
        lambda: run_campaign(_jobs(), config=FAST, workers=4, cache_dir=cache),
        rounds=1, iterations=1,
    )
    warm = run_campaign(_jobs(), config=FAST, workers=4, cache_dir=cache)

    speedup = serial.wall_seconds / max(parallel.wall_seconds, 1e-9)
    # Read counters off the versioned report dict (the to_json schema)
    # rather than poking internal attributes — the same surface the CLI
    # summary printer and any downstream tooling consume.
    cold, warm_d = parallel.to_dict(), warm.to_dict()
    rows = [
        ["chips / workers", f"{len(EXPECTED)} / 4", ""],
        ["serial wall", f"{serial.wall_seconds:.1f}s", ""],
        ["parallel wall", f"{parallel.wall_seconds:.1f}s", ""],
        ["speedup", f"{speedup:.2f}x", ">= 2x (multi-core)"],
        ["usable CPUs", str(_usable_cpus()), ""],
        ["cold cache", f"{cold['cache_hits']} hit / {cold['cache_misses']} miss", "all miss"],
        ["warm cache", f"{warm_d['cache_hits']} hit / {warm_d['cache_misses']} miss", "all hit"],
        ["warm stages executed", str(warm_d["cache_misses"]), "0"],
        ["warm wall", f"{warm.wall_seconds:.2f}s", "~0s"],
        ["report schema", warm_d["schema_version"], "round-trips"],
    ]
    emit("campaign runtime: 4-chip parallel fan-out + stage cache",
         render_table(["metric", "measured", "expected"], rows))

    # Determinism: the parallel results are byte-identical to serial.
    for name, topology in EXPECTED.items():
        a, b = serial.result(name), parallel.result(name)
        assert a.topology.value == topology
        assert b.topology.value == topology
        assert pickle.dumps(a.measurements) == pickle.dumps(b.measurements)
        assert a.pipeline_notes == b.pipeline_notes

    # Incrementality: the warm run loaded the final stage of every chip and
    # executed nothing.
    assert warm.cache_misses == 0
    assert warm.stages_executed == 0
    assert pickle.dumps(warm.result("fab-b").measurements) == \
        pickle.dumps(serial.result("fab-b").measurements)

    # The versioned serialization is stable: to_json -> from_json -> to_json
    # is a fixed point, and the telemetry survives the trip.
    restored = CampaignReport.from_json(warm.to_json())
    assert restored.to_json() == warm.to_json()
    assert list(restored.chips) == list(EXPECTED)
    assert not restored.degraded and not restored.quarantined

    # Speedup: asserted only where the hardware can provide it.
    if _usable_cpus() >= 4:
        assert speedup >= 2.0, f"expected >=2x fan-out speedup, got {speedup:.2f}x"
