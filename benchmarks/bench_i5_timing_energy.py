"""I5 quantified — what assuming the classic SA gets wrong on OCSA chips.

§VI-B: not considering the OCSA affects "the timings of the new events as
well as the reliability of analog simulations, impacting the performance,
energy and power overheads of the affected operations".  This bench runs
both topologies with the B5 chip's measured dimensions and reports the
deltas a classic-only study would never see.
"""

import pytest
from conftest import emit

from repro.analog import SenseAmpBench, SenseAmpConfig
from repro.analog.metrics import activation_comparison
from repro.circuits.topologies import SaTopology
from repro.core.hifi import sa_sizes_for
from repro.core.report import render_table


def _compare():
    sizes = sa_sizes_for("B5")
    classic = SenseAmpBench(
        SenseAmpConfig(topology=SaTopology.CLASSIC, sizes=sizes)
    ).run(data=1)
    ocsa = SenseAmpBench(
        SenseAmpConfig(topology=SaTopology.OCSA, sizes=sizes)
    ).run(data=1)
    return activation_comparison(classic, ocsa)


def test_i5_timing_energy(benchmark):
    cmp = benchmark.pedantic(_compare, rounds=1, iterations=1)
    sensing_delta = cmp["sensing_latency_ocsa_ns"] - cmp["sensing_latency_classic_ns"]
    rows = [
        ["sensing latency (ACT→80% rail)",
         f"{cmp['sensing_latency_classic_ns']:.1f} ns",
         f"{cmp['sensing_latency_ocsa_ns']:.1f} ns",
         f"+{sensing_delta:.1f} ns"],
        ["restore latency (ACT→cell 90%)",
         f"{cmp['restore_latency_classic_ns']:.1f} ns",
         f"{cmp['restore_latency_ocsa_ns']:.1f} ns",
         f"+{cmp['restore_latency_ocsa_ns'] - cmp['restore_latency_classic_ns']:.1f} ns"],
        ["switched energy",
         f"{cmp['energy_classic_fj']:.0f} fJ",
         f"{cmp['energy_ocsa_fj']:.0f} fJ",
         f"{cmp['energy_ocsa_fj'] / cmp['energy_classic_fj']:.2f}x"],
    ]
    emit(
        "I5 quantified: classic-SA assumptions vs B5's actual OCSA",
        render_table(["metric", "classic assumption", "OCSA reality", "delta"], rows),
    )
    # The OCSA's extra events lengthen the activation; a classic-only
    # study underestimates both latencies.
    assert cmp["sensing_latency_ocsa_ns"] > cmp["sensing_latency_classic_ns"]
    assert cmp["restore_latency_ocsa_ns"] > cmp["restore_latency_classic_ns"]
    # And the internal nodes add switched capacitance.
    assert cmp["energy_ocsa_fj"] > cmp["energy_classic_fj"] * 0.95


def test_i5_request_throughput(benchmark):
    """The request-level consequence: the same row-miss-heavy workload
    finishes later under the OCSA-derived timings."""
    from repro.circuits.topologies import SaTopology
    from repro.dram import derive_timings, row_hit_stream, row_miss_stream, throughput_comparison

    def run():
        classic = derive_timings(SaTopology.CLASSIC)
        ocsa = derive_timings(SaTopology.OCSA)
        return (
            throughput_comparison(row_miss_stream(32), classic, ocsa),
            throughput_comparison(row_hit_stream(32), classic, ocsa),
        )

    misses, hits = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "I5 at request level: OCSA-derived timings vs classic-derived",
        render_table(
            ["workload", "classic total", "OCSA total", "slowdown"],
            [
                ["32 row misses", f"{misses['total_a_ns']:.0f} ns",
                 f"{misses['total_b_ns']:.0f} ns", f"{misses['slowdown']:.2f}x"],
                ["32 row hits", f"{hits['total_a_ns']:.0f} ns",
                 f"{hits['total_b_ns']:.0f} ns", f"{hits['slowdown']:.2f}x"],
            ],
        ),
    )
    assert misses["slowdown"] > 1.15
    assert hits["slowdown"] < misses["slowdown"]
