"""Table I — the studied chips.

Regenerates the Table I rows from the chip database, plus the derived
array-geometry columns this reproduction adds (topology, MAT fraction,
SA height).
"""

from conftest import emit

from repro.core.chips import CHIPS, total_measurement_count
from repro.core.report import percent, render_table


def _rows():
    rows = []
    for c in CHIPS.values():
        rows.append(
            [
                c.chip_id,
                f"{c.vendor} ({c.generation})",
                f"{c.storage_gbit}Gb",
                f"'{c.year % 100}",
                f"{c.die_area_mm2:.0f}mm^2",
                c.detector,
                "V." if c.mats_visible else "N.V.",
                f"{c.pixel_resolution_nm} nm",
                c.topology.value,
                percent(c.mat_area_fraction),
                f"{c.sa_height_um():.1f}um",
            ]
        )
    return rows


def test_table1(benchmark):
    rows = benchmark(_rows)
    emit(
        "Table I: studied chips",
        render_table(
            ["ID", "Vendor", "Storage", "Yr.", "Size", "Det.", "MATs", "Pixl.Res.",
             "topology", "MAT frac", "SA height"],
            rows,
        )
        + f"\n\ntotal size measurements: {total_measurement_count()} (paper: 835)",
    )
    assert len(rows) == 6
    # Half the chips deploy OCSA (the §V finding).
    assert sum(1 for r in rows if r[8] == "ocsa") == 3
