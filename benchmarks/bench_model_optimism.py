"""§VI-A quantified — "higher W/L ratios correspond to more optimistic
simulations".

Monte Carlo sensing analysis with CROW's best-guess dimensions vs C4's
measured ones: the model senses faster, so a timing budget derived from it
fails on the measured silicon.
"""

import pytest
from conftest import emit

from repro.analog.montecarlo import model_optimism
from repro.circuits.topologies import SaSizes
from repro.core.hifi import sa_sizes_for
from repro.core.report import render_table

CROW_SIZES = SaSizes(
    nsa_w=170, nsa_l=50, psa_w=125, psa_l=50,
    precharge_w=498, precharge_l=75, equalizer_w=250, equalizer_l=55,
)


def test_model_optimism(benchmark):
    report = benchmark.pedantic(
        model_optimism,
        kwargs=dict(
            model_sizes=CROW_SIZES,
            measured_sizes=sa_sizes_for("C4"),
            sigma_mv=40.0,
            samples=8,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        ["nominal sensing latency", f"{report['model_latency_ns']:.2f} ns",
         f"{report['measured_latency_ns']:.2f} ns"],
        ["deadline budgeted from the model", f"{report['deadline_ns']:.2f} ns", ""],
        ["Monte Carlo yield at that deadline", f"{report['model_yield']:.0%}",
         f"{report['measured_yield']:.0%}"],
    ]
    emit(
        "§VI-A: CROW-dimension simulation vs C4 measured dimensions",
        render_table(["quantity", "CROW (best guess)", "C4 (measured)"], rows)
        + f"\n\noptimism gap: {report['optimism']:.0%} of samples pass in "
        "simulation but fail on the measured dimensions",
    )
    assert report["model_latency_ns"] < report["measured_latency_ns"]
    assert report["optimism"] > 0.3
