"""§IV economics — acquisition campaign costs.

Reproduces the paper's cost statements: the 100 µm² scans took "more than
24 hours of SEM/FIB" each; the remaining chips were scanned at 30 µm² "to
reduce the cost"; the blind ROI identification stays under 2 hours.
"""

import pytest
from conftest import emit

from repro.core.report import render_table
from repro.imaging.cost import campaign_cost, reference_campaigns


def test_campaign_costs(benchmark):
    campaigns = benchmark(reference_campaigns)
    rows = []
    for name, cost in campaigns.items():
        rows.append([
            name, str(cost.slices), f"{cost.sem_hours:.1f} h",
            f"{cost.fib_hours:.1f} h", f"{cost.total_hours:.1f} h",
        ])
    # Dwell-time trade-off: the §IV lever.
    sweep = {
        f"{dwell:.0f}us": campaign_cost(30.0, 4.2, dwell, 10.0).total_hours
        for dwell in (1.0, 3.0, 6.0, 12.0)
    }
    emit(
        "§IV: acquisition campaign machine time",
        render_table(["campaign", "slices", "SEM", "FIB", "total"], rows)
        + "\n\n30um^2 total vs dwell: "
        + ", ".join(f"{k}: {v:.1f}h" for k, v in sweep.items()),
    )

    # "Each acquisition took more than 24 hours of SEM/FIB" (A4/A5).
    assert campaigns["full_100um2"].total_hours > 20.0
    # The 30 µm² economy campaign cost substantially less.
    assert campaigns["reduced_30um2"].total_hours < 0.7 * campaigns["full_100um2"].total_hours
    # Dwell time scales the SEM share linearly.
    assert sweep["12us"] > sweep["1us"]
