"""Ablations of the §IV-C post-processing design choices.

1. **Denoising** (none vs Chambolle vs split-Bregman): TV denoising is
   what makes the *individual cross-sections* readable — per-pixel material
   classification on a raw noisy slice vs a denoised one.  (The planar
   views are less sensitive: averaging a layer's z-range already cancels
   noise, which this bench also demonstrates.)
2. **Alignment** (single-baseline chaining vs multi-baseline fusion):
   both must stay within the 0.77 % budget; fusion bounds the accumulated
   quantisation error on the mean.
"""

import numpy as np
import pytest
from conftest import emit

from repro.core.report import render_table
from repro.imaging import FibSemCampaign, SemParameters, acquire_stack, voxelize
from repro.imaging.sem import contrast_lookup
from repro.pipeline import align_stack, denoise_stack
from repro.pipeline.denoise import chambolle_tv, split_bregman_tv


@pytest.fixture(scope="module")
def noisy_acquisition(ocsa_region_small):
    volume = voxelize(ocsa_region_small, voxel_nm=6.0)
    sem = SemParameters(dwell_time_us=0.5)  # fast, very noisy scan
    stack = acquire_stack(
        volume,
        FibSemCampaign(slice_thickness_nm=12.0, drift_step_px=0.0, sem=sem),
    )
    return volume, stack, sem


def _classification_accuracy(image, clean_codes, sem) -> float:
    """Nearest-intensity material classification accuracy on one slice."""
    table = contrast_lookup(sem)
    predicted = np.argmin(np.abs(image[..., None] - table[None, None, :]), axis=2)
    return float((predicted == clean_codes).mean())


def test_ablation_denoising(benchmark, noisy_acquisition):
    volume, stack, sem = noisy_acquisition
    slice_idx = len(stack) // 2
    # The clean reference: the material codes of the same exposed face.
    j = volume.y_to_index(stack.slice_y_nm[slice_idx])
    clean_codes = volume.data[:, j, :].astype(np.int64)
    raw = stack.images[slice_idx]

    def run_all():
        return {
            "none": _classification_accuracy(raw, clean_codes, sem),
            "chambolle": _classification_accuracy(
                chambolle_tv(raw), clean_codes, sem
            ),
            "split_bregman": _classification_accuracy(
                split_bregman_tv(raw), clean_codes, sem
            ),
        }

    accuracy = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[m, f"{a:.1%}"] for m, a in accuracy.items()]
    emit(
        "Ablation: per-slice material classification at 0.5 us dwell",
        render_table(["denoising", "pixel accuracy"], rows)
        + "\n(planar views are less sensitive: the layer z-average already "
        "cancels most noise)",
    )
    assert accuracy["chambolle"] > accuracy["none"] + 0.02
    assert accuracy["split_bregman"] > accuracy["none"] + 0.02


def test_ablation_alignment(benchmark, ocsa_region_small):
    volume = voxelize(ocsa_region_small, voxel_nm=6.0)
    stack = acquire_stack(
        volume,
        FibSemCampaign(slice_thickness_nm=12.0, drift_step_px=0.3,
                       sem=SemParameters(dwell_time_us=6.0)),
    )
    denoised = denoise_stack(stack.images)

    def run_both():
        _a1, single = align_stack(denoised, true_drift_px=stack.true_drift_px, baselines=(1,))
        _a2, multi = align_stack(denoised, true_drift_px=stack.true_drift_px, baselines=(1, 2, 3))
        return single, multi

    single, multi = benchmark.pedantic(run_both, rounds=1, iterations=1)
    nx = stack.image_shape[0]

    def mean_residual(report):
        return float(np.mean([max(abs(a), abs(b)) for a, b in report.residual_px]))

    rows = [
        ["single baseline (chaining)", f"{single.max_residual_px()} px",
         f"{mean_residual(single):.2f} px", f"{single.residual_fraction(nx):.3%}"],
        ["multi baseline (1,2,3)", f"{multi.max_residual_px()} px",
         f"{mean_residual(multi):.2f} px", f"{multi.residual_fraction(nx):.3%}"],
        ["raw drift (no alignment)",
         f"{max(max(abs(a), abs(b)) for a, b in stack.true_drift_px)} px", "", ""],
    ]
    emit("Ablation: slice alignment strategy",
         render_table(["strategy", "max residual", "mean residual", "fraction"], rows))
    # Fusion is no worse on the mean and both stay within the paper budget.
    assert mean_residual(multi) <= mean_residual(single) + 0.3
    assert multi.residual_fraction(nx) < 0.0077
    assert single.residual_fraction(nx) < 0.02
