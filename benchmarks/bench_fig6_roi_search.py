"""Fig 6 — blind ROI identification.

Runs the morphology-change search over a simulated MAT/SA/MAT chip strip
and reports probe counts and machine time (paper: under 2 hours).
"""

import pytest
from conftest import emit

from repro.imaging import identify_roi, voxelize
from repro.layout import SaRegionSpec, generate_chip_layout
from repro.core.report import render_table


@pytest.fixture(scope="module")
def chip_and_volume():
    chip = generate_chip_layout(
        SaRegionSpec(topology="ocsa", n_pairs=2), mat_rows=8, include_row_drivers=True
    )
    return chip, voxelize(chip, voxel_nm=8.0)


def test_fig6_roi(benchmark, chip_and_volume):
    chip, volume = chip_and_volume
    result = benchmark(identify_roi, volume, 300.0)

    offset = float(chip.annotations["region_offset_nm"])
    width = float(chip.annotations["region_width_nm"])
    rd_width = float(chip.annotations["row_driver_width_nm"])
    rows = [
        ["true SA region", f"{offset:.0f}..{offset + width:.0f} nm", f"{width:.0f} nm"],
        ["row-driver strips (W1)", f"{rd_width:.0f} nm", "narrower logic"],
        ["identified ROI (W2)", f"{result.roi[0]:.0f}..{result.roi[1]:.0f} nm",
         f"{result.roi_width_nm:.0f} nm"],
        ["logic spans found", str(len(result.logic_spans)), ""],
        ["probe cross-sections", str(result.probe_count), ""],
        ["estimated machine time", f"{result.estimated_hours:.2f} h", "< 2 h"],
    ]
    emit("Fig 6: blind ROI identification (W2 > W1 decision)",
         render_table(["item", "value", "note"], rows))

    # The widest logic span is the SA region, not a row-driver strip.
    x0, x1 = result.roi
    assert x0 < offset + width / 2 < x1
    assert result.roi_width_nm > 2 * rd_width
    assert result.estimated_hours < 2.0
    assert result.roi_width_nm == pytest.approx(width, rel=0.35)
