"""Robustness of the Table II audit to measurement uncertainty.

Sweeps every chip's effective spacing sizes ±20 % and reports how far each
paper's overhead error moves: the area-driven I1/I2 conclusions barely
budge, so the paper's ">20x for 8 of 13 papers" finding does not hinge on
the exact margins.
"""

from conftest import emit

from repro.core.report import render_table
from repro.core.sensitivity import conclusions_robust, sweep_effective_sizes


def test_sensitivity(benchmark):
    results = benchmark.pedantic(sweep_effective_sizes, rounds=1, iterations=1)
    rows = []
    for r in results:
        if r.nominal is None:
            rows.append([r.paper.title, "N/A", "", ""])
        else:
            rows.append([
                r.paper.title,
                f"{r.nominal:.2f}x",
                f"{r.low:.2f}x .. {r.high:.2f}x",
                f"{r.relative_span:.1%}",
            ])
    emit(
        "Audit sensitivity: overhead error under ±20% effective-size sweep",
        render_table(["paper", "nominal", "range", "rel. span"], rows),
    )
    assert conclusions_robust(threshold=20.0)
    spans = {r.paper.key: r.relative_span for r in results if r.nominal is not None}
    # Area-driven rows are order(s) of magnitude less sensitive than the
    # transistor-level rows.
    assert spans["cooldram"] < 0.1
    assert spans["nov_dram"] > spans["cooldram"]
