"""§IV-C — the alignment noise budget.

Acquires a drifting stack from a B5-like OCSA region, aligns it with the
mutual-information pipeline, and scores the residual against the paper's
0.77 % budget rule (wire height / cross-section height).
"""

import pytest
from conftest import emit

from repro.imaging import FibSemCampaign, SemParameters, acquire_stack, voxelize
from repro.imaging.fib import alignment_noise_budget
from repro.imaging.voxel import STACK_HEIGHT_NM
from repro.pipeline import align_stack, denoise_stack
from repro.core.report import render_table


@pytest.fixture(scope="module")
def stack(ocsa_region_small):
    volume = voxelize(ocsa_region_small, voxel_nm=6.0)
    return acquire_stack(
        volume,
        FibSemCampaign(slice_thickness_nm=12.0, sem=SemParameters(dwell_time_us=6.0)),
    )


def _align(stack):
    denoised = denoise_stack(stack.images)
    return align_stack(denoised, true_drift_px=stack.true_drift_px)


def test_alignment_budget(benchmark, stack):
    _aligned, report = benchmark.pedantic(_align, args=(stack,), rounds=1, iterations=1)
    nx = stack.image_shape[0]
    residual = report.residual_fraction(nx)
    # Our wires are 18 nm in a STACK_HEIGHT-tall cross-section; the paper's
    # B5 budget was 30 nm wires at 130x height = 0.77 %.
    budget_paper = alignment_noise_budget(30.0, 30.0 * 130.0)
    rows = [
        ["slices", str(len(stack)), ""],
        ["worst true drift", f"{max(max(abs(a), abs(b)) for a, b in stack.true_drift_px)} px", ""],
        ["max residual", f"{report.max_residual_px()} px", ""],
        ["residual fraction", f"{residual:.4%}", f"budget {budget_paper:.2%} (paper)"],
    ]
    emit("§IV-C: slice alignment vs the 0.77% noise budget", render_table(["item", "value", "note"], rows))
    assert residual < budget_paper
    report.check_budget(nx, budget_paper)  # must not raise
