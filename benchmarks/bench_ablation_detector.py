"""Ablation: detector choice per vendor process (§IV-B).

The paper imaged A4/A5 with SE but had to switch to BSE for vendors B and
C, whose processes give SE poor contrast.  This bench sweeps detector ×
process and dwell time, reporting the contrast separation that decides
whether segmentation can classify materials.
"""

from conftest import emit

from repro.core.report import render_table
from repro.imaging.sem import Detector, SemParameters, contrast_separation


def _sweep():
    rows = []
    for detector in (Detector.SE, Detector.BSE):
        for friendly in (True, False):
            for dwell in (1.0, 3.0, 6.0):
                params = SemParameters(
                    detector=detector, dwell_time_us=dwell, se_friendly_process=friendly
                )
                rows.append(
                    [
                        detector.value,
                        "A-style" if friendly else "B/C-style",
                        f"{dwell:.0f} us",
                        f"{contrast_separation(params):.2f} sigma",
                    ]
                )
    return rows


def test_detector_ablation(benchmark):
    rows = benchmark(_sweep)
    emit(
        "Ablation: detector x process x dwell time (min material gap / noise)",
        render_table(["detector", "process", "dwell", "separation"], rows),
    )

    def sep(detector, friendly, dwell):
        return contrast_separation(
            SemParameters(detector=detector, dwell_time_us=dwell, se_friendly_process=friendly)
        )

    # SE works on vendor-A processes but collapses on B/C-style ones.
    assert sep(Detector.SE, True, 3.0) > sep(Detector.SE, False, 3.0) * 1.5
    # BSE is process-independent and rescues B/C (the paper's switch).
    assert sep(Detector.BSE, False, 3.0) == sep(Detector.BSE, True, 3.0)
    assert sep(Detector.BSE, False, 3.0) > sep(Detector.SE, False, 3.0)
    # Longer dwell always helps (at imaging cost).
    assert sep(Detector.BSE, False, 6.0) > sep(Detector.BSE, False, 1.0)
