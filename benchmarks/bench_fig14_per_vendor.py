"""Fig 14 — per-vendor/per-chip overhead variation for the <10x papers.

Also checks the two observations the paper draws from the figure.
"""

import pytest
from conftest import emit

from repro.core.overheads import (
    fig14_breakdown,
    observation1_charm_vendor_spread,
    observation2_biggest_port_gain,
)
from repro.core.report import render_series


def test_fig14(benchmark):
    breakdown = benchmark(fig14_breakdown)
    lines = [
        render_series(title, per_chip, unit="x")
        for title, per_chip in breakdown.items()
    ]
    obs1 = observation1_charm_vendor_spread()
    obs2 = observation2_biggest_port_gain()
    emit(
        "Fig 14: per-chip overhead error / porting cost (papers <10x)",
        "\n".join(lines)
        + f"\n\nObservation 1: CHARM A-to-C DDR5 spread = {obs1:.2f}x"
        + f"\nObservation 2: largest porting gain = {obs2[2]:.2f}x "
        f"({obs2[0]} on {obs2[1]}; paper: -0.47x on A5)",
    )

    # The always-over-10x papers are omitted, as in the figure.
    assert "CoolDRAM" not in breakdown
    assert "AMBIT" not in breakdown
    # The feasible proposals stay.
    for title in ("CHARM", "R.B. DEC.", "Nov. DRAM", "PF-DRAM"):
        assert title in breakdown

    # Observation 2 reproduces exactly: R.B. DEC., chip A5, ≈ −0.47x.
    assert obs2[0] == "R.B. DEC."
    assert obs2[1] == "A5"
    assert obs2[2] == pytest.approx(-0.47, abs=0.05)

    # Observation 1: vendor-to-vendor variation exists for every paper.
    for title, per_chip in breakdown.items():
        assert max(per_chip.values()) - min(per_chip.values()) > 0.01, title
