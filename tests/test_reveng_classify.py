"""Transistor classification (§V-A steps iv–viii)."""

from collections import Counter

import pytest

from repro.circuits.netlist import DeviceType
from repro.reveng.classify import (
    TransistorClass,
    identify_bitline_nets,
    lane_subcircuit,
    lane_subcircuits,
)
from repro.errors import ReverseEngineeringError


class TestBitlineAnchoring:
    def test_two_pairs_give_four_bitlines(self, classic_re):
        assert len(classic_re.classification.bitline_nets) == 4

    def test_bitlines_enter_from_mat_edges(self, classic_re):
        nets = identify_bitline_nets(classic_re.extracted)
        assert set(nets) == set(classic_re.classification.bitline_nets)

    def test_lane_pairs(self, classic_re):
        assert len(classic_re.classification.lane_pairs) == 2
        for bl, blb in classic_re.classification.lane_pairs:
            assert bl != blb


class TestStructuralClasses:
    def test_classic_structural_census(self, classic_re):
        counts = Counter(c for c in classic_re.classification.structural.values())
        assert counts[TransistorClass.COUPLED] == 8  # 4 latch x 2 lanes
        assert counts[TransistorClass.COMMON_GATE] == 6  # 2 pre + 1 eq x 2 lanes
        assert counts[TransistorClass.MULTIPLEXER] == 8  # 4 col + 4 LSA

    def test_ocsa_structural_census(self, ocsa_re):
        counts = Counter(c for c in ocsa_re.classification.structural.values())
        assert counts[TransistorClass.COUPLED] == 8
        assert counts[TransistorClass.COMMON_GATE] == 12  # iso+oc+pre x2 x2
        assert counts[TransistorClass.MULTIPLEXER] == 8


class TestFunctionalClasses:
    def test_classic_functional_census(self, classic_re):
        counts = Counter(c.value for c in classic_re.classification.functional.values())
        assert counts == {
            "column": 4, "LSA": 4, "nSA": 4, "pSA": 4,
            "equalizer": 2, "precharge": 4,
        }

    def test_ocsa_functional_census(self, ocsa_re):
        counts = Counter(c.value for c in ocsa_re.classification.functional.values())
        assert counts == {
            "column": 4, "LSA": 4, "nSA": 4, "pSA": 4,
            "isolation": 4, "offset_cancel": 4, "precharge": 4,
        }

    def test_iso_vs_oc_disambiguation(self, ocsa_re):
        """ISO connects a bitline to the node whose latch is gated by the
        *other* bitline; OC diode-connects (same bitline)."""
        devices = ocsa_re.extracted.devices
        functional = ocsa_re.classification.functional
        bitlines = set(ocsa_re.classification.bitline_nets)
        for name, cls in functional.items():
            if cls not in (TransistorClass.ISOLATION, TransistorClass.OFFSET_CANCEL):
                continue
            dev = devices[name]
            assert set(dev.terminal_nets) & bitlines, name


class TestChannelAssignment:
    def test_psa_narrower_than_nsa(self, classic_re):
        devices = classic_re.extracted.devices
        functional = classic_re.classification.functional
        psa_w = [devices[n].width_nm for n, c in functional.items() if c is TransistorClass.PSA]
        nsa_w = [devices[n].width_nm for n, c in functional.items() if c is TransistorClass.NSA]
        assert max(psa_w) < min(nsa_w)

    def test_channel_types_assigned(self, classic_re):
        circuit = classic_re.extracted.circuit
        functional = classic_re.classification.functional
        for name, cls in functional.items():
            dtype = circuit.device(name).dtype
            if cls is TransistorClass.PSA:
                assert dtype is DeviceType.PMOS
            elif cls is TransistorClass.NSA:
                assert dtype is DeviceType.NMOS


class TestLaneSubcircuits:
    def test_lane_device_counts(self, classic_re, ocsa_re):
        for sub in lane_subcircuits(classic_re.extracted, classic_re.classification):
            assert sub.mos_count() == 9
        for sub in lane_subcircuits(ocsa_re.extracted, ocsa_re.classification):
            assert sub.mos_count() == 12

    def test_renamed_bitlines(self, classic_re):
        sub = lane_subcircuit(classic_re.extracted, classic_re.classification, 0)
        assert {"BL", "BLB"} <= sub.nets()

    def test_out_of_range_lane(self, classic_re):
        with pytest.raises(ReverseEngineeringError):
            lane_subcircuit(classic_re.extracted, classic_re.classification, 99)

    def test_lsa_excluded_from_lanes(self, classic_re):
        """The LSA latch is in the region but not part of the SA (§V-C)."""
        functional = classic_re.classification.functional
        lsa_names = {n for n, c in functional.items() if c is TransistorClass.LSA}
        for sub in lane_subcircuits(classic_re.extracted, classic_re.classification):
            assert not lsa_names & set(sub.devices)
