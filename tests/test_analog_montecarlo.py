"""Monte Carlo sensing-yield analysis (§VI-A optimism)."""

import pytest

from repro.analog.montecarlo import (
    model_optimism,
    nominal_sensing_latency,
    sensing_yield,
    yield_curve,
)
from repro.circuits.topologies import SaSizes, SaTopology
from repro.core.hifi import sa_sizes_for
from repro.errors import AnalogError

CROW_SIZES = SaSizes(
    nsa_w=170, nsa_l=50, psa_w=125, psa_l=50,
    precharge_w=498, precharge_l=75, equalizer_w=250, equalizer_l=55,
)


class TestYield:
    def test_zero_sigma_full_yield(self):
        result = sensing_yield(SaTopology.CLASSIC, sigma_mv=0.0, samples=3)
        assert result.yield_fraction == 1.0

    def test_huge_sigma_fails_sometimes(self):
        result = sensing_yield(SaTopology.CLASSIC, sigma_mv=400.0, samples=12)
        assert result.failures > 0
        assert result.failure_rate == pytest.approx(result.failures / 12)

    def test_deterministic(self):
        a = sensing_yield(SaTopology.CLASSIC, sigma_mv=150.0, samples=8, seed=3)
        b = sensing_yield(SaTopology.CLASSIC, sigma_mv=150.0, samples=8, seed=3)
        assert a.failures == b.failures

    def test_bad_parameters(self):
        with pytest.raises(AnalogError):
            sensing_yield(SaTopology.CLASSIC, samples=0)
        with pytest.raises(AnalogError):
            sensing_yield(SaTopology.CLASSIC, sigma_mv=-1.0)

    def test_deadline_fails_slow_senses(self):
        fast_enough = sensing_yield(
            SaTopology.CLASSIC, sigma_mv=0.0, samples=2, deadline_ns=30.0
        )
        too_tight = sensing_yield(
            SaTopology.CLASSIC, sigma_mv=0.0, samples=2, deadline_ns=1.0
        )
        assert fast_enough.yield_fraction == 1.0
        assert too_tight.yield_fraction == 0.0


class TestYieldCurve:
    def test_monotone_in_sigma(self):
        curve = yield_curve(
            SaTopology.CLASSIC, sigmas_mv=(50.0, 300.0), samples=10
        )
        assert curve[0].yield_fraction >= curve[-1].yield_fraction


class TestOptimism:
    def test_crow_senses_faster_than_silicon(self):
        """Inflated W/L → faster simulated sensing (§VI-A's mechanism)."""
        crow = nominal_sensing_latency(SaTopology.CLASSIC, CROW_SIZES)
        c4 = nominal_sensing_latency(SaTopology.CLASSIC, sa_sizes_for("C4"))
        assert crow < c4

    def test_crow_budget_fails_on_measured_silicon(self):
        """A deadline derived from CROW's latency cannot be met by the
        measured C4 dimensions — the model is optimistic."""
        report = model_optimism(
            CROW_SIZES, sa_sizes_for("C4"), sigma_mv=40.0, samples=6
        )
        assert report["model_latency_ns"] < report["measured_latency_ns"]
        assert report["model_yield"] > report["measured_yield"]
        assert report["optimism"] > 0.3
