"""MNA transient solver: linear sanity, RC dynamics, MOS circuits."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analog.solver import TransientSolver, Waveform, dc_operating_point
from repro.circuits.netlist import Circuit
from repro.errors import AnalogError


class TestWaveform:
    def test_constant(self):
        w = Waveform.constant(1.1)
        assert w.value(0.0) == 1.1
        assert w.value(100.0) == 1.1

    def test_step_interpolates(self):
        w = Waveform.step(5.0, 0.0, 1.0, rise_ns=1.0)
        assert w.value(4.0) == 0.0
        assert w.value(5.5) == pytest.approx(0.5)
        assert w.value(7.0) == 1.0

    def test_unsorted_rejected(self):
        with pytest.raises(AnalogError):
            Waveform(((1.0, 0.0), (0.5, 1.0)))

    def test_empty_rejected(self):
        with pytest.raises(AnalogError):
            Waveform(())

    def test_shifted(self):
        w = Waveform.step(5.0, 0.0, 1.0).shifted(2.0)
        assert w.value(6.9) == 0.0
        assert w.value(7.3) > 0.0

    @given(st.floats(min_value=0, max_value=20, allow_nan=False))
    def test_interpolation_bounded(self, t):
        w = Waveform(((2.0, 0.2), (4.0, 0.9), (9.0, 0.1)))
        assert 0.1 <= w.value(t) <= 0.9 + 1e-12


class TestLinear:
    def test_resistor_divider(self):
        c = Circuit("div")
        c.add_vsource("v", "IN", "0", 1.0)
        c.add_resistor("r1", "IN", "MID", 1000.0)
        c.add_resistor("r2", "MID", "0", 1000.0)
        op = dc_operating_point(c)
        assert op["MID"] == pytest.approx(0.5, abs=1e-3)
        assert op["IN"] == pytest.approx(1.0, abs=1e-6)

    def test_rc_charge_time_constant(self):
        c = Circuit("rc")
        c.add_vsource("v", "IN", "0", 1.0)
        c.add_resistor("r", "IN", "OUT", 1e3)  # 1 kΩ
        c.add_capacitor("cl", "OUT", "0", 1e-12)  # 1 pF → τ = 1 ns
        solver = TransientSolver(c)
        res = solver.run(t_stop_ns=5.0, dt_ns=0.01)
        # After one τ the capacitor is at 1 - 1/e.
        assert res.at("OUT", 1.0) == pytest.approx(1 - np.exp(-1), abs=0.02)
        assert res.final("OUT") == pytest.approx(1.0, abs=0.01)

    def test_driven_source_follows_waveform(self):
        c = Circuit("drv")
        c.add_vsource("v", "A", "0", 0.0)
        c.add_resistor("r", "A", "0", 1e6)
        solver = TransientSolver(c, stimuli={"v": Waveform.step(2.0, 0.2, 0.8, rise_ns=0.2)})
        res = solver.run(t_stop_ns=4.0, dt_ns=0.05)
        assert res.at("A", 1.0) == pytest.approx(0.2, abs=1e-6)
        assert res.at("A", 3.0) == pytest.approx(0.8, abs=1e-6)

    def test_unknown_stimulus_rejected(self):
        c = Circuit("c")
        c.add_vsource("v", "A", "0", 1.0)
        with pytest.raises(AnalogError):
            TransientSolver(c, stimuli={"nope": Waveform.constant(1.0)})

    def test_bad_time_rejected(self):
        c = Circuit("c")
        c.add_vsource("v", "A", "0", 1.0)
        with pytest.raises(AnalogError):
            TransientSolver(c).run(t_stop_ns=-1.0)

    def test_record_unknown_net_rejected(self):
        c = Circuit("c")
        c.add_vsource("v", "A", "0", 1.0)
        with pytest.raises(AnalogError):
            TransientSolver(c).run(t_stop_ns=1.0, record=["Z"])


class TestMos:
    def test_nmos_inverter(self):
        c = Circuit("inv")
        c.add_vsource("vdd", "VDD", "0", 1.1)
        c.add_vsource("vin", "IN", "0", 0.0)
        c.add_resistor("rl", "VDD", "OUT", 20e3)
        c.add_mos("m", "nmos", d="OUT", g="IN", s="0", w=200, l=40)
        solver_lo = TransientSolver(c, stimuli={"vin": Waveform.constant(0.0)})
        out_hi = solver_lo.run(t_stop_ns=50, dt_ns=0.5).final("OUT")
        solver_hi = TransientSolver(c, stimuli={"vin": Waveform.constant(1.1)})
        out_lo = solver_hi.run(t_stop_ns=50, dt_ns=0.5).final("OUT")
        assert out_hi > 1.0
        assert out_lo < 0.3

    def test_source_follower_level_shift(self):
        c = Circuit("sf")
        c.add_vsource("vdd", "VDD", "0", 2.0)
        c.add_vsource("vin", "IN", "0", 1.5)
        c.add_mos("m", "nmos", d="VDD", g="IN", s="OUT", w=400, l=40)
        c.add_resistor("rl", "OUT", "0", 50e3)
        out = dc_operating_point(c)["OUT"]
        # The output settles roughly Vt below the gate.
        assert 0.7 < out < 1.2

    def test_capacitive_charge_conservation(self):
        """A pass transistor sharing charge between two capacitors."""
        c = Circuit("share")
        c.add_capacitor("c1", "A", "0", 10e-15)
        c.add_capacitor("c2", "B", "0", 10e-15)
        c.add_vsource("vg", "G", "0", 0.0)
        c.add_mos("m", "nmos", d="A", g="G", s="B", w=100, l=40)
        solver = TransientSolver(c, stimuli={"vg": Waveform.step(1.0, 0.0, 2.5)})
        res = solver.run(t_stop_ns=30.0, dt_ns=0.05, ic={"A": 1.0, "B": 0.0})
        # Equal caps end at the average.
        assert res.final("A") == pytest.approx(0.5, abs=0.03)
        assert res.final("B") == pytest.approx(0.5, abs=0.03)


class TestResult:
    def test_crossing_time(self):
        c = Circuit("rc")
        c.add_vsource("v", "IN", "0", 1.0)
        c.add_resistor("r", "IN", "OUT", 1e3)
        c.add_capacitor("cl", "OUT", "0", 1e-12)
        res = TransientSolver(c).run(t_stop_ns=5.0, dt_ns=0.01)
        t50 = res.crossing_time("OUT", 0.5)
        assert t50 == pytest.approx(0.693, abs=0.03)  # τ·ln2

    def test_crossing_none_when_never(self):
        c = Circuit("flat")
        c.add_vsource("v", "A", "0", 0.2)
        c.add_resistor("r", "A", "0", 1e3)
        res = TransientSolver(c).run(t_stop_ns=1.0, dt_ns=0.1)
        assert res.crossing_time("A", 0.9) is None

    def test_separation(self):
        c = Circuit("two")
        c.add_vsource("v1", "A", "0", 1.0)
        c.add_vsource("v2", "B", "0", 0.25)
        c.add_resistor("r1", "A", "0", 1e3)
        c.add_resistor("r2", "B", "0", 1e3)
        res = TransientSolver(c).run(t_stop_ns=1.0, dt_ns=0.1)
        assert res.separation("A", "B")[-1] == pytest.approx(0.75, abs=1e-6)


class TestConvergence:
    def test_convergence_error_when_iterations_exhausted(self):
        from repro.errors import ConvergenceError

        c = Circuit("hard")
        c.add_vsource("vdd", "VDD", "0", 1.1)
        c.add_mos("m1", "nmos", d="VDD", g="X", s="Y", w=500, l=40)
        c.add_mos("m2", "nmos", d="Y", g="VDD", s="0", w=500, l=40)
        c.add_capacitor("cx", "X", "0", 1e-15)
        c.add_capacitor("cy", "Y", "0", 1e-15)
        solver = TransientSolver(c, max_newton=1, tol=1e-12)
        with pytest.raises(ConvergenceError) as err:
            solver.run(t_stop_ns=1.0, dt_ns=0.5, ic={"X": 1.0})
        assert err.value.iterations == 1

    def test_default_settings_converge_on_the_same_circuit(self):
        c = Circuit("hard")
        c.add_vsource("vdd", "VDD", "0", 1.1)
        c.add_mos("m1", "nmos", d="VDD", g="X", s="Y", w=500, l=40)
        c.add_mos("m2", "nmos", d="Y", g="VDD", s="0", w=500, l=40)
        c.add_capacitor("cx", "X", "0", 1e-15)
        c.add_capacitor("cy", "Y", "0", 1e-15)
        TransientSolver(c).run(t_stop_ns=1.0, dt_ns=0.5, ic={"X": 1.0})
