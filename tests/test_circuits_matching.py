"""Topology identification (§V-A's pin-pointing step)."""

import pytest

from repro.circuits.matching import (
    identify_topology,
    is_isomorphic_to,
    topology_signature,
)
from repro.circuits.netlist import Circuit, Device, DeviceType
from repro.circuits.topologies import SaTopology, build_classic_sa, build_ocsa
from repro.errors import TopologyError


class TestSignature:
    def test_classic_signature(self):
        sig = topology_signature(build_classic_sa())
        assert sig.mos_count == 9
        assert sig.has_bitline_bridge  # the equalizer
        assert sig.internal_node_count == 0
        assert sig.latch_gates_on_bitlines

    def test_ocsa_signature(self):
        sig = topology_signature(build_ocsa())
        assert sig.mos_count == 12
        assert not sig.has_bitline_bridge
        assert sig.internal_node_count == 2  # SABL, SABLB
        assert sig.latch_gates_on_bitlines

    def test_empty_circuit_rejected(self):
        c = Circuit("empty")
        c.add_capacitor("c", "BL", "0", 1e-15)
        with pytest.raises(TopologyError):
            topology_signature(c)

    def test_describe_is_readable(self):
        text = topology_signature(build_ocsa()).describe()
        assert "12 MOS" in text


class TestIdentify:
    def test_classic_identified_exactly(self):
        result = identify_topology(build_classic_sa())
        assert result.topology is SaTopology.CLASSIC
        assert result.exact

    def test_ocsa_identified_exactly(self):
        result = identify_topology(build_ocsa())
        assert result.topology is SaTopology.OCSA
        assert result.exact

    def test_terminal_swap_does_not_matter(self):
        """Extraction has no d/s orientation; matching must not care."""
        c = build_classic_sa()
        swapped = Circuit("swapped")
        for dev in c:
            nets = dict(dev.nets)
            if dev.dtype.is_mos:
                nets["d"], nets["s"] = nets["s"], nets["d"]
            swapped.add(Device(dev.name, dev.dtype, nets, dict(dev.params)))
        result = identify_topology(swapped)
        assert result.topology is SaTopology.CLASSIC
        assert result.exact

    def test_unknown_topology_rejected(self):
        """A bare latch with no precharge matches neither reference —
        the situation before the paper widened its search to the
        offset-cancellation corpus."""
        c = Circuit("bare")
        c.add_mos("n1", "nmos", d="X1", g="BLB", s="LAB", w=100, l=40)
        c.add_mos("n2", "nmos", d="X2", g="BL", s="LAB", w=100, l=40)
        c.add_mos("e", "nmos", d="BL", g="PEQ", s="BLB", w=50, l=40)
        with pytest.raises(TopologyError):
            identify_topology(c)

    def test_extra_device_breaks_exactness_not_identification(self):
        c = build_classic_sa()
        c.add_mos("spy", "nmos", d="BL", g="EXTRA", s="VPRE", w=50, l=50)
        result = identify_topology(c)
        assert result.topology is SaTopology.CLASSIC
        assert not result.exact
        assert any("isomorphism failed" in n for n in result.notes)

    def test_loose_matching_ignores_channel_types(self):
        """NMOS/PMOS are visually indistinguishable pre-heuristic."""
        c = build_classic_sa()
        all_nmos = Circuit("all_nmos")
        for dev in c:
            all_nmos.add(Device(dev.name, DeviceType.NMOS, dict(dev.nets), dict(dev.params)))
        assert not is_isomorphic_to(all_nmos, build_classic_sa(), loose=False)
        assert is_isomorphic_to(all_nmos, build_classic_sa(), loose=True)

    def test_cross_topology_not_isomorphic(self):
        assert not is_isomorphic_to(build_classic_sa(), build_ocsa(), loose=True)
