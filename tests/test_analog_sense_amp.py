"""Sense-amplifier activation simulations and margin analyses."""

import pytest

from repro.analog import (
    SenseAmpBench,
    SenseAmpConfig,
    charge_sharing_onset,
    offset_tolerance,
    simulate_activation,
)
from repro.circuits.topologies import SaTopology
from repro.errors import AnalogError


class TestConfig:
    def test_vpre_half_vdd(self):
        assert SenseAmpConfig(vdd=1.2).vpre == pytest.approx(0.6)

    def test_transfer_ratio(self):
        cfg = SenseAmpConfig(cell_cap_f=20e-15, bitline_cap_f=80e-15)
        assert cfg.transfer_ratio == pytest.approx(0.2)

    def test_expected_signal_signs(self):
        cfg = SenseAmpConfig()
        assert cfg.expected_signal(1) > 0
        assert cfg.expected_signal(0) < 0


class TestClassicActivation:
    def test_senses_one(self, classic_activation):
        assert classic_activation.data_sensed == 1
        assert classic_activation.correct

    def test_full_rail_separation(self, classic_activation):
        assert classic_activation.bl_final > 0.9 * classic_activation.config.vdd
        assert classic_activation.blb_final < 0.1 * classic_activation.config.vdd

    def test_cell_restored(self, classic_activation):
        """Latching also restores the capacitor charge (§II-A)."""
        assert classic_activation.restored
        assert classic_activation.cell_final > 0.9 * classic_activation.config.vdd

    def test_senses_zero(self):
        out = simulate_activation(SaTopology.CLASSIC, data=0)
        assert out.correct
        assert out.bl_final < out.blb_final

    def test_bad_data_rejected(self):
        with pytest.raises(AnalogError):
            simulate_activation(SaTopology.CLASSIC, data=2)


class TestOcsaActivation:
    def test_senses_one(self, ocsa_activation):
        assert ocsa_activation.correct
        assert ocsa_activation.restored

    def test_senses_zero(self):
        out = simulate_activation(SaTopology.OCSA, data=0)
        assert out.correct

    def test_internal_nodes_recorded(self, ocsa_activation):
        assert "SABL" in ocsa_activation.result.voltages
        assert "SABLB" in ocsa_activation.result.voltages

    def test_presense_separates_internal_nodes_correctly(self, ocsa_activation):
        """§V-A: pre-sensing latches the capacitor value onto the internal
        nodes (SABL > SABLB for data=1) without the bitline load."""
        timeline = ocsa_activation.timeline
        ps_end = timeline.event("pre_sensing").end_ns - 0.2
        res = ocsa_activation.result
        assert res.at("SABL", ps_end) > res.at("SABLB", ps_end)

    def test_presense_does_not_recharge_cell(self, ocsa_activation):
        """§V-A: pre-sensing happens "without recharging the capacitor" —
        the cell only restores after ISO turns on."""
        timeline = ocsa_activation.timeline
        res = ocsa_activation.result
        ps_end = timeline.event("pre_sensing").end_ns - 0.2
        vdd = ocsa_activation.config.vdd
        assert res.at("CELL", ps_end) < 0.8 * vdd
        assert res.at("CELL", timeline.event("latch_restore").end_ns - 0.2) > 0.9 * vdd


class TestMismatchBehaviour:
    def test_small_mismatch_tolerated(self):
        out = simulate_activation(SaTopology.CLASSIC, data=1, vt_mismatch=0.05)
        assert out.correct

    def test_large_mismatch_flips_classic(self):
        out = simulate_activation(SaTopology.CLASSIC, data=1, vt_mismatch=0.35)
        assert not out.correct


class TestOffsetTolerance:
    def test_ocsa_tolerates_more_offset(self):
        """The reason vendors deploy OCSAs (§V-A)."""
        classic = offset_tolerance(SaTopology.CLASSIC, data=1, resolution=0.02)
        ocsa = offset_tolerance(SaTopology.OCSA, data=1, resolution=0.02)
        assert ocsa > classic

    def test_tolerance_positive(self):
        assert offset_tolerance(SaTopology.CLASSIC, data=1, resolution=0.05) > 0.05


class TestChargeSharing:
    def test_onset_delayed_on_ocsa(self):
        """§VI-D: out-of-spec experiments see delayed charge sharing."""
        classic = charge_sharing_onset(SaTopology.CLASSIC)
        ocsa = charge_sharing_onset(SaTopology.OCSA)
        assert ocsa > classic + 1.0

    def test_onset_matches_wordline(self):
        t = charge_sharing_onset(SaTopology.CLASSIC)
        from repro.analog.events import classic_activation_timeline

        wl_rise = classic_activation_timeline().event("charge_sharing").start_ns
        assert t == pytest.approx(wl_rise, abs=1.0)


class TestWorstCaseTolerance:
    def test_ocsa_beats_classic_worst_case(self):
        """The honest margin figure: minimised over the stored value, the
        OCSA still tolerates ~30% more latch mismatch."""
        from repro.analog import worst_case_offset_tolerance

        classic = worst_case_offset_tolerance(SaTopology.CLASSIC, resolution=0.03)
        ocsa = worst_case_offset_tolerance(SaTopology.OCSA, resolution=0.03)
        assert ocsa > classic * 1.1

    def test_worst_case_not_above_single_data(self):
        from repro.analog import worst_case_offset_tolerance

        worst = worst_case_offset_tolerance(SaTopology.CLASSIC, resolution=0.05, hi=0.5)
        single = offset_tolerance(SaTopology.CLASSIC, data=1, resolution=0.05, hi=0.5)
        assert worst <= single + 1e-9
