"""The parametric chip catalog: registry, enumerator, campaign scoring.

The campaign tests here crop regions (``y_stop_nm``) and use the fast
population preset — catalog orchestration and determinism are what is
under test; full-fidelity identification across the whole axis grid is
covered by the ``catalog-smoke`` CI job and the perf probe.
"""

import json
import pickle

import pytest

from repro.catalog import (
    NOISE_REGIMES,
    PROCESS_PRESETS,
    VENDOR_PROFILES,
    CatalogReport,
    CatalogSpec,
    ChipVariantSpec,
    build_job,
    build_region_spec,
    chip_variant,
    expand_grid,
    register_variant,
    registered_variants,
    run_catalog_campaign,
    sample,
    variant_builder,
)
from repro.errors import CatalogError, UnknownVariantError
from repro.layout import SaRegionSpec


# ---------------------------------------------------------------- registry

class TestRegistry:
    def test_builtin_builders_registered(self):
        names = registered_variants()
        assert "classic" in names and "ocsa" in names
        # Table I chips ride along as hifi-<id> builders.
        assert "hifi-a4" in names and "hifi-c5" in names

    def test_unknown_variant_names_registered(self):
        with pytest.raises(UnknownVariantError) as exc:
            variant_builder("no-such-variant")
        assert "no-such-variant" in str(exc.value)
        assert "classic" in str(exc.value) and "ocsa" in str(exc.value)

    def test_module_attr_lookup(self):
        builder = variant_builder("repro.catalog.variants:build_classic_variant")
        spec = ChipVariantSpec(name="mod", variant="classic")
        assert builder(spec) == build_region_spec(spec)

    def test_module_attr_lookup_bad_ref(self):
        with pytest.raises(UnknownVariantError):
            variant_builder("repro.catalog.variants:no_such_attr")

    def test_register_variant_latest_wins(self):
        def fake(spec):
            return SaRegionSpec(name=spec.name, topology="classic", n_pairs=1)

        register_variant("catalog-test-tmp", fake)
        try:
            assert variant_builder("catalog-test-tmp") is fake
            assert "catalog-test-tmp" in registered_variants()
        finally:
            from repro.catalog import variants as mod

            del mod._VARIANT_BUILDERS["catalog-test-tmp"]

    def test_builder_must_return_region_spec(self):
        register_variant("catalog-test-bad", lambda spec: 42)
        try:
            with pytest.raises(CatalogError):
                build_region_spec(
                    ChipVariantSpec(name="bad", variant="catalog-test-bad")
                )
        finally:
            from repro.catalog import variants as mod

            del mod._VARIANT_BUILDERS["catalog-test-bad"]


# ------------------------------------------------------------ variant spec

class TestChipVariantSpec:
    @pytest.mark.parametrize("field,value", [
        ("vendor", "fab-z"),
        ("generation", "ddr6"),
        ("noise", "silent"),
        ("word_size", 0),
        ("column_mux", 0),
        ("body_tap", "everywhere"),
    ])
    def test_invalid_axis_values(self, field, value):
        with pytest.raises(CatalogError):
            ChipVariantSpec(name="v", **{field: value})

    @pytest.mark.parametrize("field,value", [
        ("feature_nm", -1.0),
        ("transition_nm", 0.0),
    ])
    def test_bad_overrides_fail_at_lowering(self, field, value):
        from repro.errors import LayoutError

        with pytest.raises(LayoutError):
            build_region_spec(ChipVariantSpec(name="v", **{field: value}))

    def test_axes_property(self):
        spec = ChipVariantSpec(name="v", variant="ocsa", vendor="fab-b",
                               generation="ddr5", word_size=1)
        axes = spec.axes
        assert axes["variant"] == "ocsa"
        assert axes["vendor"] == "fab-b"
        assert axes["generation"] == "ddr5"
        assert axes["word_size"] == 1
        assert axes["faults"] is False


# --------------------------------------------------------------- lowering

class TestLowering:
    def test_default_matches_legacy_spec(self):
        # The fab-a/ddr4 profile is the identity: lowering must reproduce
        # a hand-built SaRegionSpec bit-for-bit (floats exact at x1.0).
        for topology in ("classic", "ocsa"):
            for n in (1, 2):
                got = build_region_spec(
                    ChipVariantSpec(name="leg", variant=topology, word_size=n)
                )
                assert got == SaRegionSpec(name="leg", topology=topology, n_pairs=n)

    def test_generation_sets_transition(self):
        ddr4 = build_region_spec(ChipVariantSpec(name="g4", generation="ddr4"))
        ddr5 = build_region_spec(ChipVariantSpec(name="g5", generation="ddr5"))
        assert ddr4.transition_nm == 318.0
        assert ddr5.transition_nm == 275.0
        assert ddr5.feature_nm < ddr4.feature_nm

    def test_vendor_scales_feature(self):
        base = build_region_spec(ChipVariantSpec(name="va", vendor="fab-a"))
        fabb = build_region_spec(ChipVariantSpec(name="vb", vendor="fab-b"))
        scale = VENDOR_PROFILES["fab-b"].feature_scale
        assert fabb.feature_nm == pytest.approx(base.feature_nm * scale)

    def test_feature_override_wins(self):
        spec = ChipVariantSpec(name="ov", vendor="fab-b", feature_nm=21.0,
                               transition_nm=300.0)
        region = build_region_spec(spec)
        assert region.feature_nm == 21.0
        assert region.transition_nm == 300.0

    def test_knobs_reach_region(self):
        region = build_region_spec(
            ChipVariantSpec(name="k", column_mux=8, body_tap="edge", word_size=2)
        )
        assert region.column_mux == 8
        assert region.body_tap == "edge"
        assert region.n_pairs == 2

    def test_chip_variant_builders_match_table1(self):
        from repro.core.chips import CHIPS

        for chip_id, chip in CHIPS.items():
            region = build_region_spec(chip_variant(chip_id))
            assert region.topology == chip.topology.value
            assert region.feature_nm == chip.geometry.feature_nm

    def test_presets_and_regimes_well_formed(self):
        assert set(PROCESS_PRESETS) == {"ddr4", "ddr5"}
        for regime in NOISE_REGIMES.values():
            assert regime["dwell_time_us"] > 0

    def test_build_job_sampling_tracks_process(self):
        # Acquisition sampling must scale with the variant's feature size
        # (the paper picks pixel resolution per chip) so off-grid
        # processes do not alias wire gaps away.
        job_a = build_job(ChipVariantSpec(name="ja"))
        job_b = build_job(ChipVariantSpec(name="jb", vendor="fab-b"))
        scale = job_b.spec.feature_nm / job_a.spec.feature_nm
        assert job_b.campaign.sem.pixel_nm == pytest.approx(
            job_a.campaign.sem.pixel_nm * scale
        )
        assert job_b.voxel_nm == pytest.approx(job_a.voxel_nm * scale)

    def test_build_job_matches_synthetic_defaults(self):
        from repro.runtime import ChipJob

        job = build_job(ChipVariantSpec(name="sj", variant="ocsa", word_size=2,
                                        noise="quiet"))
        legacy = ChipJob.synthetic("sj", "ocsa", n_pairs=2, dwell_time_us=8.0)
        assert job.spec == legacy.spec
        assert job.campaign.sem.pixel_nm == legacy.campaign.sem.pixel_nm
        assert job.voxel_nm == legacy.voxel_nm


# -------------------------------------------------------------- enumerator

class TestEnumerator:
    def test_grid_size_and_unique_names(self):
        spec = CatalogSpec()
        variants = expand_grid(spec)
        assert len(variants) == spec.grid_size == 48
        assert len({v.name for v in variants}) == len(variants)

    def test_expand_grid_deterministic(self):
        assert pickle.dumps(expand_grid(CatalogSpec())) == pickle.dumps(
            expand_grid(CatalogSpec())
        )

    def test_sample_deterministic_and_seed_sensitive(self):
        spec = CatalogSpec()
        a = sample(spec, 10, seed=3)
        b = sample(spec, 10, seed=3)
        c = sample(spec, 10, seed=4)
        assert pickle.dumps(a) == pickle.dumps(b)
        assert pickle.dumps(a) != pickle.dumps(c)
        assert len(a) == 10
        assert len({v.name for v in a}) == 10

    def test_sample_draw_carries_seed(self):
        for k, v in enumerate(sample(CatalogSpec(), 5, seed=0)):
            assert v.seed == k

    def test_bad_axis_value_raises_eagerly(self):
        with pytest.raises(CatalogError):
            CatalogSpec(vendors=("fab-z",))
        with pytest.raises(CatalogError):
            CatalogSpec(word_sizes=(0,))


# ---------------------------------------------------------------- campaign

CROP = {"y_stop_nm": 400.0}


@pytest.fixture(scope="module")
def tiny_variants():
    grid = CatalogSpec(variants=("classic", "ocsa"), vendors=("fab-a",),
                       generations=("ddr4",), word_sizes=(1,),
                       column_muxes=(4,), body_taps=("none",),
                       noises=("nominal",))
    return expand_grid(grid)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("catalog-cache"))


@pytest.fixture(scope="module")
def serial_report(tiny_variants, cache_dir):
    return run_catalog_campaign(tiny_variants, workers=1, cache_dir=cache_dir,
                                job_kwargs=CROP)


class TestCatalogCampaign:
    def test_scores_cover_population(self, serial_report, tiny_variants):
        assert len(serial_report.scores) == len(tiny_variants)
        assert serial_report.population["variants"] == len(tiny_variants)
        assert 0.0 <= serial_report.population["identification_rate"] <= 1.0

    def test_workers_bit_identical(self, serial_report, tiny_variants, cache_dir):
        parallel = run_catalog_campaign(tiny_variants, workers=4,
                                        cache_dir=cache_dir, job_kwargs=CROP)
        assert parallel.results_digest() == serial_report.results_digest()

    def test_cached_rerun_all_hits(self, serial_report, tiny_variants, cache_dir):
        warm = run_catalog_campaign(tiny_variants, workers=2,
                                    cache_dir=cache_dir, job_kwargs=CROP)
        assert warm.cache_misses == 0
        assert warm.cache_hits > 0
        assert warm.results_digest() == serial_report.results_digest()

    def test_empty_population_rejected(self):
        with pytest.raises(CatalogError):
            run_catalog_campaign([])

    def test_duplicate_names_rejected(self, tiny_variants):
        with pytest.raises(CatalogError):
            run_catalog_campaign(list(tiny_variants) + [tiny_variants[0]])

    def test_report_json_round_trip(self, serial_report):
        clone = CatalogReport.from_json(serial_report.to_json())
        assert clone.results_digest() == serial_report.results_digest()
        assert clone.population == serial_report.population
        assert [s.name for s in clone.scores] == [
            s.name for s in serial_report.scores
        ]

    def test_report_schema_versioned(self, serial_report):
        data = json.loads(serial_report.to_json())
        assert data["schema_version"] == "catalog-report/1"
        data["schema_version"] = "catalog-report/99"
        with pytest.raises(CatalogError):
            CatalogReport.from_dict(data)

    def test_render_mentions_population(self, serial_report):
        text = serial_report.render()
        assert "identification" in text
        assert serial_report.scores[0].name in text
