"""Unit-conversion helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_identity_of_nm():
    assert units.nm(42.0) == 42.0


def test_um_to_nm():
    assert units.um(1.0) == 1000.0
    assert units.um(2.5) == 2500.0


def test_mm_to_nm():
    assert units.mm(1.0) == 1_000_000.0


def test_round_trips():
    assert units.to_um(units.um(3.7)) == pytest.approx(3.7)
    assert units.to_mm(units.mm(0.25)) == pytest.approx(0.25)
    assert units.to_um2(units.um2(12.0)) == pytest.approx(12.0)
    assert units.to_mm2(units.mm2(34.0)) == pytest.approx(34.0)


def test_area_units_are_squares_of_length_units():
    assert units.UM2 == units.UM**2
    assert units.MM2 == units.MM**2


def test_fmt_nm_adaptive():
    assert units.fmt_nm(42.0) == "42.0 nm"
    assert units.fmt_nm(2500.0) == "2.5 um"
    assert units.fmt_nm(3_400_000.0) == "3.4 mm"


def test_fmt_area_adaptive():
    assert units.fmt_area(100.0) == "100.00 nm^2"
    assert "um^2" in units.fmt_area(5 * units.UM2)
    assert "mm^2" in units.fmt_area(2 * units.MM2)


def test_fmt_ratio_and_percent():
    assert units.fmt_ratio(175.0, digits=0) == "175x"
    assert units.fmt_percent(0.57, digits=0) == "57%"


def test_time_units():
    assert units.ns(5.0) == 5.0
    assert units.us_time(1.0) == 1000.0
    assert units.ps(500.0) == pytest.approx(0.5)


@given(st.floats(min_value=1e-3, max_value=1e9, allow_nan=False))
def test_um_round_trip_property(value):
    assert math.isclose(units.to_um(units.um(value)), value, rel_tol=1e-12)


@given(st.floats(min_value=1e-3, max_value=1e6, allow_nan=False))
def test_fmt_nm_never_empty(value):
    assert units.fmt_nm(value)
