"""Appendix A, MAT transitions, DCC analysis, recommendations, reports."""

import pytest

from repro.circuits.topologies import SaTopology
from repro.core.bitline_scaling import (
    bitline_halving_extension,
    m2_slack_factor,
    sa_extension_eq1,
)
from repro.core.dcc import (
    average_mat_extension_overhead,
    dcc_area_factor,
    dcc_chip_overhead,
    naive_dcc_overhead,
    underestimation_factor,
)
from repro.core.mat_transition import (
    average_split_overhead,
    average_transition_nm,
    transition_overhead_fraction,
)
from repro.core.recommendations import (
    RECOMMENDATIONS,
    ProposalDescription,
    audit_proposal,
)
from repro.core.report import factor, percent, render_series, render_table
from repro.errors import EvaluationError


class TestBitlineScaling:
    def test_eq1_canonical_value(self):
        """Eq. 1: 4/3 − 1 ≈ 33 %."""
        assert sa_extension_eq1() == pytest.approx(1 / 3)

    def test_eq1_decreases_with_width_ratio(self):
        # Ext = 1/(1 + Bw/d): relatively wider bitlines gain more from
        # halving, so the residual extension shrinks.
        assert sa_extension_eq1(1.0) > sa_extension_eq1(2.0) > sa_extension_eq1(4.0)

    def test_eq1_rejects_bad_ratio(self):
        with pytest.raises(EvaluationError):
            sa_extension_eq1(0.0)

    def test_b5_chip_overhead_about_20_percent(self):
        """Appendix A: ≈21 % chip overhead on B5 even with halved bitlines."""
        result = bitline_halving_extension("B5")
        assert result["sa_extension"] == pytest.approx(1 / 3)
        assert result["chip_overhead"] == pytest.approx(0.21, abs=0.04)

    def test_m2_slack_only_vendor_a(self):
        assert m2_slack_factor("A4") == 8.0
        assert m2_slack_factor("A5") == 8.0
        assert m2_slack_factor("B5") == 0.0


class TestMatTransition:
    def test_average_transitions_match_paper(self):
        """§V-C: 318 nm (DDR4) and 275 nm (DDR5) on average."""
        assert average_transition_nm("DDR4") == pytest.approx(318, abs=2)
        assert average_transition_nm("DDR5") == pytest.approx(275, abs=2)

    def test_split_overheads_match_paper(self):
        """§V-C: splitting a MAT costs 1.6 % (DDR4) / 1.1 % (DDR5)."""
        assert average_split_overhead("DDR4") == pytest.approx(0.016, abs=0.002)
        assert average_split_overhead("DDR5") == pytest.approx(0.011, abs=0.002)

    def test_two_splits_double_the_cost(self):
        one = transition_overhead_fraction("A4", splits=1)
        two = transition_overhead_fraction("A4", splits=2)
        assert two == pytest.approx(2 * one)


class TestDcc:
    def test_area_factor_is_two(self):
        """6F² → 12F²: implementing a DCC doubles the cell area."""
        assert dcc_area_factor() == pytest.approx(2.0)

    def test_naive_estimate_is_negligible(self):
        """The assumed cost: two wordlines, i.e. well under 1 %."""
        assert naive_dcc_overhead("A4") < 0.005

    def test_real_overhead_is_most_of_the_mats(self):
        assert dcc_chip_overhead("A4") > 0.5

    def test_underestimation_is_huge(self):
        assert underestimation_factor("A4") > 100

    def test_average_mat_extension_near_57_percent(self):
        assert average_mat_extension_overhead() == pytest.approx(0.57, abs=0.02)

    def test_row_drivers_included_by_default(self):
        with_rd = dcc_chip_overhead("C4", include_row_drivers=True)
        without = dcc_chip_overhead("C4", include_row_drivers=False)
        assert with_rd > without


class TestRecommendations:
    def test_four_recommendations(self):
        assert set(RECOMMENDATIONS) == {"R1", "R2", "R3", "R4"}

    def test_clean_proposal(self):
        desc = ProposalDescription(
            name="careful",
            wiring_overhead_included=True,
            evaluated_topologies=(SaTopology.CLASSIC, SaTopology.OCSA),
        )
        result = audit_proposal(desc)
        assert result.clean
        assert not result.inaccuracies

    def test_ambit_style_proposal(self):
        """A DCC-based proposal trips I1, I2 and I5 — AMBIT's Table II row."""
        desc = ProposalDescription(
            name="ambit-like",
            adds_bitlines_in_mat=True,
            adds_bitlines_in_sa=True,
        )
        result = audit_proposal(desc)
        names = {i.name for i in result.inaccuracies}
        assert names == {"I1", "I2", "I5"}
        assert not result.clean

    def test_elp2im_style_proposal(self):
        desc = ProposalDescription(
            name="elp2im-like",
            adds_bitlines_in_sa=True,
            assumes_independent_control_gates=True,
        )
        result = audit_proposal(desc)
        assert {i.name for i in result.inaccuracies} == {"I2", "I3", "I5"}

    def test_layout_assumption_trips_r3(self):
        desc = ProposalDescription(name="reorder", assumes_columns_after_sa=True)
        result = audit_proposal(desc)
        assert RECOMMENDATIONS["R3"] in result.violated

    def test_ocsa_evaluation_satisfies_r4(self):
        desc = ProposalDescription(
            name="modern",
            evaluated_topologies=(SaTopology.OCSA,),
            wiring_overhead_included=True,
        )
        result = audit_proposal(desc)
        assert RECOMMENDATIONS["R4"] not in result.violated


class TestReport:
    def test_render_table(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text
        assert "-+-" in lines[2]

    def test_render_series(self):
        text = render_series("CHARM", {"A4": 0.5, "C4": 1.0}, unit="x")
        assert "A4=0.50x" in text

    def test_percent_and_factor(self):
        assert percent(0.57) == "57%"
        assert factor(175.0, digits=0) == "175x"
        assert factor(None) == "N/A"


class TestChipAcquisitionFields:
    def test_dwell_matches_section_4b(self):
        """'dwell times of 3 us (A4-5, B4) and 6 us (B5, C4-5)'."""
        from repro.core.chips import chip

        assert chip("A4").dwell_time_us == chip("A5").dwell_time_us == chip("B4").dwell_time_us == 3.0
        assert chip("B5").dwell_time_us == chip("C4").dwell_time_us == chip("C5").dwell_time_us == 6.0

    def test_slice_thickness_in_paper_range(self):
        """'removing perpendicular slices of 20 nm or 10 nm'."""
        from repro.core.chips import CHIPS

        for c in CHIPS.values():
            assert c.slice_thickness_nm in (10.0, 20.0)
