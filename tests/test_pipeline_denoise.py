"""TV denoising: Chambolle and split-Bregman (§IV-C)."""

import numpy as np
import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import PipelineError
from repro.pipeline.denoise import (
    chambolle_tv,
    clear_buffer_pool,
    denoise_stack,
    residual_noise,
    split_bregman_tv,
    _divergence,
    _gradient,
    _reference_chambolle_tv,
    _reference_split_bregman_tv,
)


def _piecewise_image(rng=None) -> tuple[np.ndarray, np.ndarray]:
    clean = np.zeros((48, 48))
    clean[:, 16:32] = 0.7
    clean[12:36, :] += 0.2
    rng = rng or np.random.default_rng(11)
    noisy = clean + rng.normal(0, 0.08, clean.shape)
    return clean, noisy


def _total_variation(u: np.ndarray) -> float:
    gx, gy = _gradient(u)
    return float(np.sqrt(gx * gx + gy * gy).sum())


class TestOperators:
    def test_divergence_is_negative_adjoint(self):
        """⟨∇u, p⟩ = −⟨u, div p⟩ (up to sign convention) on random fields."""
        rng = np.random.default_rng(3)
        u = rng.random((16, 16))
        px = rng.random((16, 16))
        py = rng.random((16, 16))
        gx, gy = _gradient(u)
        lhs = float((gx * px + gy * py).sum())
        rhs = float((u * _divergence(px, py)).sum())
        assert lhs == pytest.approx(-rhs, rel=1e-9)

    def test_gradient_of_constant_is_zero(self):
        gx, gy = _gradient(np.full((8, 8), 0.5))
        assert not gx.any() and not gy.any()


@pytest.mark.parametrize("method", [chambolle_tv, split_bregman_tv])
class TestDenoisers:
    def test_reduces_noise(self, method):
        clean, noisy = _piecewise_image()
        out = method(noisy)
        assert residual_noise(clean, out) < residual_noise(clean, noisy)

    def test_reduces_total_variation(self, method):
        _clean, noisy = _piecewise_image()
        out = method(noisy)
        assert _total_variation(out) < _total_variation(noisy)

    def test_preserves_edges(self, method):
        """Edge-preserving: the 0→0.7 step survives (vs a box blur)."""
        clean, noisy = _piecewise_image()
        out = method(noisy)
        step = float(out[:, 20:28].mean() - out[:, 4:12].mean())
        assert step > 0.5  # the true step is 0.7

    def test_constant_image_unchanged(self, method):
        img = np.full((16, 16), 0.4)
        out = method(img)
        assert np.allclose(out, img, atol=0.02)

    def test_rejects_non_2d(self, method):
        with pytest.raises(PipelineError):
            method(np.zeros(10))


class TestPooledBuffersBitIdentical:
    """The in-place, buffer-pooled solvers must reproduce the seed
    implementations bit for bit at default settings."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        nx=st.integers(3, 48),
        nz=st.integers(3, 48),
        float32=st.booleans(),
    )
    def test_chambolle_bit_identical(self, seed, nx, nz, float32):
        rng = np.random.default_rng(seed)
        img = np.clip(rng.random((nx, nz)) + rng.normal(0, 0.1, (nx, nz)), 0, 1)
        if float32:
            img = img.astype(np.float32)
        fast, ref = chambolle_tv(img), _reference_chambolle_tv(img)
        assert fast.dtype == ref.dtype
        np.testing.assert_array_equal(fast, ref)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        nx=st.integers(3, 48),
        nz=st.integers(3, 48),
        float32=st.booleans(),
    )
    def test_split_bregman_bit_identical(self, seed, nx, nz, float32):
        rng = np.random.default_rng(seed)
        img = np.clip(rng.random((nx, nz)) + rng.normal(0, 0.1, (nx, nz)), 0, 1)
        if float32:
            img = img.astype(np.float32)
        fast, ref = split_bregman_tv(img), _reference_split_bregman_tv(img)
        assert fast.dtype == ref.dtype
        np.testing.assert_array_equal(fast, ref)

    def test_non_default_parameters_also_identical(self):
        _clean, noisy = _piecewise_image()
        np.testing.assert_array_equal(
            chambolle_tv(noisy, weight=0.2, iterations=23, tau=0.19),
            _reference_chambolle_tv(noisy, weight=0.2, iterations=23, tau=0.19),
        )
        np.testing.assert_array_equal(
            split_bregman_tv(noisy, weight=0.15, iterations=9, inner_iterations=3),
            _reference_split_bregman_tv(noisy, weight=0.15, iterations=9, inner_iterations=3),
        )

    def test_repeated_calls_reuse_pool_without_contamination(self):
        """Leased buffers are dirty; a second call must not see the first's
        state.  (Also exercises clear_buffer_pool.)"""
        _clean, noisy = _piecewise_image()
        first = chambolle_tv(noisy)
        clear_buffer_pool()
        second = chambolle_tv(noisy)
        third = chambolle_tv(noisy[:-1, :-1])  # different shape → different pool key
        np.testing.assert_array_equal(first, second)
        assert third.shape == (47, 47)


class TestEarlyStopping:
    def test_tol_none_is_default_and_exact(self):
        _clean, noisy = _piecewise_image()
        np.testing.assert_array_equal(chambolle_tv(noisy, tol=None), chambolle_tv(noisy))

    def test_tol_stops_early_but_stays_close(self):
        _clean, noisy = _piecewise_image()
        full = chambolle_tv(noisy, iterations=400)
        early = chambolle_tv(noisy, iterations=400, tol=1e-3)
        assert float(np.abs(full - early).max()) < 0.01

    def test_tol_split_bregman(self):
        _clean, noisy = _piecewise_image()
        full = split_bregman_tv(noisy, iterations=60)
        early = split_bregman_tv(noisy, iterations=60, tol=1e-4)
        assert float(np.abs(full - early).max()) < 0.01

    def test_tol_through_denoise_stack(self):
        _clean, noisy = _piecewise_image()
        out = denoise_stack([noisy], tol=1e-3)
        assert len(out) == 1 and out[0].shape == noisy.shape


class TestStack:
    def test_denoise_stack_both_methods(self):
        _clean, noisy = _piecewise_image()
        for method in ("chambolle", "split_bregman"):
            out = denoise_stack([noisy, noisy], method=method)
            assert len(out) == 2

    def test_unknown_method_rejected(self):
        with pytest.raises(PipelineError):
            denoise_stack([np.zeros((4, 4))], method="median")

    def test_stronger_weight_smooths_more(self):
        _clean, noisy = _piecewise_image()
        weak = chambolle_tv(noisy, weight=0.02)
        strong = chambolle_tv(noisy, weight=0.3)
        assert _total_variation(strong) < _total_variation(weak)
