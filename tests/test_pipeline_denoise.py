"""TV denoising: Chambolle and split-Bregman (§IV-C)."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.pipeline.denoise import (
    chambolle_tv,
    denoise_stack,
    residual_noise,
    split_bregman_tv,
    _divergence,
    _gradient,
)


def _piecewise_image(rng=None) -> tuple[np.ndarray, np.ndarray]:
    clean = np.zeros((48, 48))
    clean[:, 16:32] = 0.7
    clean[12:36, :] += 0.2
    rng = rng or np.random.default_rng(11)
    noisy = clean + rng.normal(0, 0.08, clean.shape)
    return clean, noisy


def _total_variation(u: np.ndarray) -> float:
    gx, gy = _gradient(u)
    return float(np.sqrt(gx * gx + gy * gy).sum())


class TestOperators:
    def test_divergence_is_negative_adjoint(self):
        """⟨∇u, p⟩ = −⟨u, div p⟩ (up to sign convention) on random fields."""
        rng = np.random.default_rng(3)
        u = rng.random((16, 16))
        px = rng.random((16, 16))
        py = rng.random((16, 16))
        gx, gy = _gradient(u)
        lhs = float((gx * px + gy * py).sum())
        rhs = float((u * _divergence(px, py)).sum())
        assert lhs == pytest.approx(-rhs, rel=1e-9)

    def test_gradient_of_constant_is_zero(self):
        gx, gy = _gradient(np.full((8, 8), 0.5))
        assert not gx.any() and not gy.any()


@pytest.mark.parametrize("method", [chambolle_tv, split_bregman_tv])
class TestDenoisers:
    def test_reduces_noise(self, method):
        clean, noisy = _piecewise_image()
        out = method(noisy)
        assert residual_noise(clean, out) < residual_noise(clean, noisy)

    def test_reduces_total_variation(self, method):
        _clean, noisy = _piecewise_image()
        out = method(noisy)
        assert _total_variation(out) < _total_variation(noisy)

    def test_preserves_edges(self, method):
        """Edge-preserving: the 0→0.7 step survives (vs a box blur)."""
        clean, noisy = _piecewise_image()
        out = method(noisy)
        step = float(out[:, 20:28].mean() - out[:, 4:12].mean())
        assert step > 0.5  # the true step is 0.7

    def test_constant_image_unchanged(self, method):
        img = np.full((16, 16), 0.4)
        out = method(img)
        assert np.allclose(out, img, atol=0.02)

    def test_rejects_non_2d(self, method):
        with pytest.raises(PipelineError):
            method(np.zeros(10))


class TestStack:
    def test_denoise_stack_both_methods(self):
        _clean, noisy = _piecewise_image()
        for method in ("chambolle", "split_bregman"):
            out = denoise_stack([noisy, noisy], method=method)
            assert len(out) == 2

    def test_unknown_method_rejected(self):
        with pytest.raises(PipelineError):
            denoise_stack([np.zeros((4, 4))], method="median")

    def test_stronger_weight_smooths_more(self):
        _clean, noisy = _piecewise_image()
        weak = chambolle_tv(noisy, weight=0.02)
        strong = chambolle_tv(noisy, weight=0.3)
        assert _total_variation(strong) < _total_variation(weak)
