"""Voxelization: layout → 3-D material volume."""

import numpy as np
import pytest

from repro.errors import ImagingError
from repro.imaging.voxel import (
    LAYER_Z_RANGES,
    MATERIAL_CODES,
    STACK_HEIGHT_NM,
    rasterize_layer,
    voxelize,
)
from repro.layout.cell import LayoutCell
from repro.layout.elements import LAYER_MATERIAL, Layer, Material, Wire
from repro.layout.geometry import Rect


def _wire_cell() -> LayoutCell:
    cell = LayoutCell("w")
    cell.add_wire(Wire("bl", Layer.METAL1, Rect(0, 0, 600, 18), "BL"))
    cell.add_wire(Wire("rail", Layer.METAL2, Rect(100, -60, 172, 300), "LA"))
    return cell


class TestZStack:
    def test_every_layer_has_a_range(self):
        for layer in Layer:
            z0, z1 = LAYER_Z_RANGES[layer]
            assert 0 <= z0 < z1 <= STACK_HEIGHT_NM

    def test_transistor_layer_at_the_bottom(self):
        """Fig 4: 'the transistor layer is placed at the bottom of the IC'."""
        assert LAYER_Z_RANGES[Layer.ACTIVE][0] == 0.0

    def test_capacitors_above_bitlines(self):
        """§IV-D: stacked capacitors sit above the bitlines."""
        assert LAYER_Z_RANGES[Layer.CAPACITOR][0] >= LAYER_Z_RANGES[Layer.METAL1][1]


class TestVoxelize:
    def test_shapes_land_in_their_z_range(self):
        vol = voxelize(_wire_cell(), voxel_nm=6.0)
        m1_code = MATERIAL_CODES[LAYER_MATERIAL[Layer.METAL1]]
        i = vol.x_to_index(300.0)
        j = vol.y_to_index(9.0)
        z0, z1 = LAYER_Z_RANGES[Layer.METAL1]
        k = int((z0 + z1) / 2 / 6.0)
        assert vol.data[i, j, k] == m1_code
        # Below M1 there is no copper for this cell.
        assert vol.data[i, j, 0] == 0

    def test_background_is_dielectric(self):
        vol = voxelize(_wire_cell(), voxel_nm=6.0)
        assert vol.data[0, 0, 0] == 0

    def test_bad_voxel_size(self):
        with pytest.raises(ImagingError):
            voxelize(_wire_cell(), voxel_nm=0.0)

    def test_coordinate_round_trip(self):
        vol = voxelize(_wire_cell(), voxel_nm=6.0)
        i = vol.x_to_index(300.0)
        assert vol.index_to_x(i) == pytest.approx(300.0, abs=6.0)

    def test_cross_section_shape(self):
        vol = voxelize(_wire_cell(), voxel_nm=6.0)
        face = vol.cross_section(3)
        assert face.shape == (vol.shape[0], vol.shape[2])

    def test_cross_section_out_of_range(self):
        vol = voxelize(_wire_cell(), voxel_nm=6.0)
        with pytest.raises(ImagingError):
            vol.cross_section(10_000)

    def test_planar_view_and_mask(self):
        vol = voxelize(_wire_cell(), voxel_nm=6.0)
        mask = vol.layer_mask(Layer.METAL1)
        i, j = vol.x_to_index(300.0), vol.y_to_index(9.0)
        assert mask[i, j]
        assert not mask[0, 0]


class TestRasterizeLayer:
    def test_matches_voxel_mask(self, classic_cell):
        mask = rasterize_layer(classic_cell, Layer.METAL1, voxel_nm=6.0)
        vol = voxelize(classic_cell, voxel_nm=6.0)
        vol_mask = vol.layer_mask(Layer.METAL1)
        assert mask.shape == vol_mask.shape
        # Contacts/vias displace metal in the volume, so the rasterised
        # ground truth is a superset.
        assert (vol_mask & ~mask).sum() == 0

    def test_empty_layer_empty_mask(self):
        mask = rasterize_layer(_wire_cell(), Layer.CAPACITOR, voxel_nm=6.0)
        assert not mask.any()

    def test_coverage_scales_with_area(self):
        mask = rasterize_layer(_wire_cell(), Layer.METAL1, voxel_nm=6.0)
        expected_px = (600 / 6) * (18 / 6)
        # Rasterisation rounds outward, so up to one extra row/column.
        assert mask.sum() == pytest.approx(expected_px, rel=0.45)
