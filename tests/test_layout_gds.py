"""GDSII writer/reader round-trips."""

import struct

import pytest

from repro.errors import GdsFormatError
from repro.layout import SaRegionSpec, generate_sa_region, read_gds, write_gds
from repro.layout.cell import LayoutCell
from repro.layout.elements import Layer, Wire
from repro.layout.gds import GDS_LAYER_NUMBERS, _parse_real8, _real8
from repro.layout.geometry import Rect


def _tiny_cell() -> LayoutCell:
    cell = LayoutCell("tiny")
    cell.add_wire(Wire("a", Layer.METAL1, Rect(0, 0, 100, 18), "BL"))
    cell.add_wire(Wire("b", Layer.METAL2, Rect(10, -50, 82, 500), "LA"))
    return cell


class TestReal8:
    @pytest.mark.parametrize("value", [0.0, 1.0, -1.0, 1e-3, 1e-9, 2.5e-9, 1234.5])
    def test_round_trip(self, value):
        assert _parse_real8(_real8(value)) == pytest.approx(value, rel=1e-12)

    def test_bad_length_rejected(self):
        with pytest.raises(GdsFormatError):
            _parse_real8(b"\x00" * 4)


class TestRoundTrip:
    def test_tiny_cell(self, tmp_path):
        path = tmp_path / "tiny.gds"
        count = write_gds(_tiny_cell(), path)
        assert count == 2
        lib = read_gds(path)
        assert lib.structure == "tiny"
        assert lib.count() == 2
        assert lib.shapes[Layer.METAL1][0] == Rect(0, 0, 100, 18)
        assert lib.shapes[Layer.METAL2][0] == Rect(10, -50, 82, 500)

    def test_generated_region(self, tmp_path, ocsa_cell):
        path = tmp_path / "region.gds"
        count = write_gds(ocsa_cell, path)
        lib = read_gds(path)
        assert lib.count() == count
        # Per-layer shape counts survive.
        for layer in Layer:
            expected = len(ocsa_cell.shapes_on(layer))
            got = len(lib.shapes.get(layer, []))
            assert got == expected, layer

    def test_layer_numbers_unique(self):
        numbers = list(GDS_LAYER_NUMBERS.values())
        assert len(numbers) == len(set(numbers))


class TestErrors:
    def test_truncated_stream(self, tmp_path):
        path = tmp_path / "broken.gds"
        write_gds(_tiny_cell(), path)
        data = path.read_bytes()
        # Remove the ENDLIB/ENDSTR and the structure name record.
        path.write_bytes(data[:20])
        with pytest.raises(GdsFormatError):
            read_gds(path)

    def test_bad_units_rejected(self, tmp_path):
        path = tmp_path / "units.gds"
        write_gds(_tiny_cell(), path)
        data = bytearray(path.read_bytes())
        # UNITS payload starts after HEADER(6)+BGNLIB(28)+LIBNAME records;
        # find the UNITS record (type 0x0305) and corrupt the meters real.
        i = 0
        while i + 4 <= len(data):
            length, rtype = struct.unpack_from(">HH", data, i)
            if rtype == 0x0305:
                data[i + 4 + 8 : i + 4 + 16] = _real8(1e-3)  # 1 mm db unit
                break
            i += length
        path.write_bytes(bytes(data))
        with pytest.raises(GdsFormatError):
            read_gds(path)


class TestRoundTripProperty:
    from hypothesis import given, settings, strategies as st

    rect_strategy = st.tuples(
        st.integers(min_value=-10_000, max_value=10_000),
        st.integers(min_value=-10_000, max_value=10_000),
        st.integers(min_value=1, max_value=5_000),
        st.integers(min_value=1, max_value=5_000),
    )

    @given(st.lists(rect_strategy, min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_rects_round_trip(self, raw):
        import tempfile
        from pathlib import Path

        cell = LayoutCell("prop")
        for i, (x, y, w, h) in enumerate(raw):
            cell.add_wire(Wire(f"w{i}", Layer.METAL1, Rect(x, y, x + w, y + h), f"n{i}"))
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "prop.gds"
            count = write_gds(cell, path)
            lib = read_gds(path)
        assert count == len(raw)
        got = sorted(
            (r.x0, r.y0, r.x1, r.y1) for r in lib.shapes[Layer.METAL1]
        )
        expected = sorted(
            (float(x), float(y), float(x + w), float(y + h)) for x, y, w, h in raw
        )
        assert got == expected
