"""Volume assembly and the cross-section → planar point-of-view change."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.imaging.voxel import LAYER_Z_RANGES
from repro.layout.elements import Layer
from repro.pipeline.stack import AlignedVolume, assemble_volume, planar_views


def _stack_with_bright_m1(n=10, nx=40, nz=64, pixel=6.0):
    """Slices with a bright band in METAL1's z-range."""
    z0, z1 = LAYER_Z_RANGES[Layer.METAL1]
    k0, k1 = int(z0 / pixel), int(np.ceil(z1 / pixel))
    images = []
    for _ in range(n):
        img = np.full((nx, nz), 0.1, dtype=np.float32)
        img[10:30, k0:k1] = 0.9
        images.append(img)
    return images


class TestAssemble:
    def test_shape_and_repeat(self):
        vol = assemble_volume(_stack_with_bright_m1(), pixel_nm=6.0, slice_thickness_nm=12.0)
        assert vol.shape == (40, 20, 64)  # 10 slices repeated 2x

    def test_no_repeat_when_isotropic(self):
        vol = assemble_volume(_stack_with_bright_m1(), pixel_nm=6.0, slice_thickness_nm=6.0)
        assert vol.shape == (40, 10, 64)

    def test_empty_rejected(self):
        with pytest.raises(PipelineError):
            assemble_volume([], pixel_nm=6.0, slice_thickness_nm=6.0)

    def test_inconsistent_shapes_rejected(self):
        imgs = [np.zeros((4, 4), dtype=np.float32), np.zeros((5, 4), dtype=np.float32)]
        with pytest.raises(PipelineError):
            assemble_volume(imgs, pixel_nm=6.0, slice_thickness_nm=6.0)


class TestPlanar:
    def test_planar_view_finds_the_band(self):
        vol = assemble_volume(_stack_with_bright_m1(), pixel_nm=6.0, slice_thickness_nm=12.0)
        view = vol.planar_view(Layer.METAL1)
        assert view.shape == (40, 20)
        assert view[20, 10] > 0.8
        assert view[0, 0] < 0.2

    def test_other_layers_dark(self):
        vol = assemble_volume(_stack_with_bright_m1(), pixel_nm=6.0, slice_thickness_nm=12.0)
        assert vol.planar_view(Layer.ACTIVE).max() < 0.2

    def test_layer_above_stack_rejected(self):
        short = [img[:, :10] for img in _stack_with_bright_m1()]
        vol = assemble_volume(short, pixel_nm=6.0, slice_thickness_nm=6.0)
        with pytest.raises(PipelineError):
            vol.planar_view(Layer.CAPACITOR)

    def test_planar_views_helper(self):
        vol = assemble_volume(_stack_with_bright_m1(), pixel_nm=6.0, slice_thickness_nm=12.0)
        views = planar_views(vol, (Layer.METAL1, Layer.GATE))
        assert set(views) == {Layer.METAL1, Layer.GATE}

    def test_cross_section_access(self):
        vol = assemble_volume(_stack_with_bright_m1(), pixel_nm=6.0, slice_thickness_nm=12.0)
        face = vol.cross_section(5)
        assert face.shape == (40, 64)


class TestRotation:
    def test_zero_tilt_on_axis_aligned_volume(self):
        vol = assemble_volume(_stack_with_bright_m1(), pixel_nm=6.0, slice_thickness_nm=12.0)
        assert abs(vol.estimated_tilt_deg()) < 2.0

    def test_rotation_round_trip(self):
        vol = assemble_volume(_stack_with_bright_m1(n=16), pixel_nm=6.0, slice_thickness_nm=12.0)
        rotated = vol.rotated(5.0)
        restored = rotated.rotated(-5.0)
        core = (slice(12, 28), slice(8, 24), slice(20, 26))
        assert np.abs(restored.data[core] - vol.data[core]).mean() < 0.1


class TestTiltEstimation:
    def test_estimates_an_applied_rotation(self):
        """The §IV-C final rotation correction: a deliberately tilted
        volume is detected with the right sign and rough magnitude."""
        vol = assemble_volume(_stack_with_bright_m1(n=30, nx=60), pixel_nm=6.0, slice_thickness_nm=6.0)
        tilted = vol.rotated(6.0)
        estimate = tilted.estimated_tilt_deg()
        assert 2.0 < abs(estimate) < 12.0

    def test_correction_reduces_tilt(self):
        vol = assemble_volume(_stack_with_bright_m1(n=30, nx=60), pixel_nm=6.0, slice_thickness_nm=6.0)
        tilted = vol.rotated(6.0)
        corrected = tilted.rotated(-tilted.estimated_tilt_deg())
        assert abs(corrected.estimated_tilt_deg()) <= abs(tilted.estimated_tilt_deg()) + 0.5
