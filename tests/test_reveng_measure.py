"""§V-B measurements and ground-truth validation."""

import pytest

from repro.errors import ReverseEngineeringError
from repro.reveng.classify import TransistorClass
from repro.reveng.measure import CLASS_TO_KIND, measure_devices, validation_errors


class TestMeasurementTable:
    def test_all_classes_measured(self, ocsa_re):
        table = ocsa_re.measurements
        for cls in (
            TransistorClass.NSA, TransistorClass.PSA, TransistorClass.COLUMN,
            TransistorClass.PRECHARGE, TransistorClass.ISOLATION,
            TransistorClass.OFFSET_CANCEL, TransistorClass.LSA,
        ):
            stats = table.stats(cls)
            assert stats.count >= 2
            assert stats.mean_w_nm > 0 and stats.mean_l_nm > 0

    def test_missing_class_raises(self, classic_re):
        with pytest.raises(ReverseEngineeringError):
            classic_re.measurements.stats(TransistorClass.ISOLATION)

    def test_wl_ratio(self, classic_re):
        stats = classic_re.measurements.stats(TransistorClass.NSA)
        assert stats.wl_ratio == pytest.approx(stats.mean_w_nm / stats.mean_l_nm)

    def test_bitline_pitch_recovered(self, classic_re):
        """The measured bitline pitch relates to the generator's 8-row
        lanes: rails of one lane are 7 pitches apart, lanes 16 apart."""
        pitch = classic_re.measurements.bitline_pitch_nm
        assert pitch is not None
        assert pitch > 0

    def test_measurement_count(self, ocsa_re):
        # 2 dims per recovered device at minimum.
        assert ocsa_re.measurements.total_measurements >= 2 * 28


class TestValidation:
    def test_classic_validation_complete(self, classic_re):
        v = classic_re.validation
        assert v.complete
        assert not v.spurious_classes
        assert v.device_count_found == v.device_count_expected == 22

    def test_ocsa_validation_complete(self, ocsa_re):
        v = ocsa_re.validation
        assert v.complete
        assert v.device_count_found == 28

    def test_dimension_recovery_error_bounded(self, classic_re, ocsa_re):
        """W/L recovered within rasterisation accuracy (6 nm pixels on
        ~40 nm features → ≤ ~25 % per-class mean error)."""
        for re_result in (classic_re, ocsa_re):
            assert re_result.validation.max_relative_error() < 0.25

    def test_class_kind_mapping_consistent(self):
        from repro.layout.elements import TransistorKind

        assert CLASS_TO_KIND[TransistorClass.NSA] is TransistorKind.NSA
        assert CLASS_TO_KIND[TransistorClass.OFFSET_CANCEL] is TransistorKind.OFFSET_CANCEL
