"""Shared fixtures.

Expensive artefacts (generated layouts, reverse-engineering runs, transient
simulations) are session-scoped: they are deterministic, read-only in the
tests, and dominate the suite's runtime otherwise.
"""

from __future__ import annotations

import pytest

from repro.circuits.topologies import SaTopology
from repro.layout import LayoutCell, SaRegionSpec, generate_sa_region


@pytest.fixture(scope="session")
def classic_cell() -> LayoutCell:
    """A small classic-SA region (2 bitline pairs)."""
    return generate_sa_region(SaRegionSpec(name="classic2", topology="classic", n_pairs=2))


@pytest.fixture(scope="session")
def ocsa_cell() -> LayoutCell:
    """A small OCSA region (2 bitline pairs)."""
    return generate_sa_region(SaRegionSpec(name="ocsa2", topology="ocsa", n_pairs=2))


@pytest.fixture(scope="session")
def classic_cell_4() -> LayoutCell:
    """A classic-SA region with 4 pairs (column groups exercised)."""
    return generate_sa_region(SaRegionSpec(name="classic4", topology="classic", n_pairs=4))


@pytest.fixture(scope="session")
def classic_re(classic_cell):
    """Reverse-engineered classic region (ground-truth fast path)."""
    from repro.reveng import reverse_engineer_cell

    return reverse_engineer_cell(classic_cell)


@pytest.fixture(scope="session")
def ocsa_re(ocsa_cell):
    """Reverse-engineered OCSA region (ground-truth fast path)."""
    from repro.reveng import reverse_engineer_cell

    return reverse_engineer_cell(ocsa_cell)


@pytest.fixture(scope="session")
def classic_activation():
    """A simulated classic-SA activation with data=1."""
    from repro.analog import simulate_activation

    return simulate_activation(SaTopology.CLASSIC, data=1)


@pytest.fixture(scope="session")
def ocsa_activation():
    """A simulated OCSA activation with data=1."""
    from repro.analog import simulate_activation

    return simulate_activation(SaTopology.OCSA, data=1)
