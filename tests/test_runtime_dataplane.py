"""Zero-copy data plane: shm transport, bit-identity, segment hygiene.

The contracts under test are the ones ``shard_map`` and the campaign
teardown paths rely on: a published array always round-trips to
byte-identical pickle output (non-contiguous, Fortran-order and
zero-size arrays included), and no code path — success, worker
exception, decode failure — leaves a ``repro_dp_*`` segment behind in
``/dev/shm``.
"""

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PipelineError
from repro.imaging import FibSemCampaign, SemParameters
from repro.layout import SaRegionSpec
from repro.obs import MetricsRegistry, use_metrics
from repro.pipeline import PipelineConfig, ShardPlan
from repro.runtime import ChipJob, run_campaign, shard_map, shutdown_shard_pools
from repro.runtime import dataplane
from repro.runtime.dataplane import (
    SEGMENT_PREFIX,
    DataPlaneError,
    ShmHeader,
    close_segments,
    fetch,
    fetch_view,
    process_registry,
    publish,
    release_headers,
)


def _leaked() -> list[str]:
    """``repro_dp_*`` segments currently present in /dev/shm."""
    try:
        return sorted(
            n for n in os.listdir("/dev/shm") if n.startswith(SEGMENT_PREFIX)
        )
    except OSError:  # pragma: no cover - /dev/shm-less host
        return []


def _plan(**kwargs) -> ShardPlan:
    kwargs.setdefault("slices", True)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("shm_min_bytes", 1)
    return ShardPlan(**kwargs)


def _scale(batch: list[np.ndarray]) -> list[np.ndarray]:
    return [a * 2.0 + 1.0 for a in batch]


def _boom(batch):
    raise ValueError("worker exploded")


pytestmark = pytest.mark.skipif(
    not dataplane.available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    yield
    shutdown_shard_pools()


@pytest.fixture(autouse=True)
def _no_segment_leaks():
    """Every test must leave /dev/shm exactly as it found it."""
    before = _leaked()
    yield
    assert _leaked() == before


class TestShardPlanDataPlaneFields:
    def test_defaults(self):
        plan = ShardPlan()
        assert plan.data_plane == "shm"
        assert plan.shm_min_bytes == 16 * 1024
        assert plan.fuse is True

    def test_unknown_data_plane_rejected(self):
        with pytest.raises(PipelineError):
            ShardPlan(data_plane="carrier-pigeon")

    def test_zero_shm_min_bytes_rejected(self):
        with pytest.raises(PipelineError):
            ShardPlan(shm_min_bytes=0)

    def test_data_plane_not_in_cache_token(self):
        """Transport choice must never repartition the cache."""
        a = PipelineConfig(shard=ShardPlan(slices=True, data_plane="shm"))
        b = PipelineConfig(shard=ShardPlan(slices=True, data_plane="pickle"))
        assert a.cache_token() == b.cache_token()


_DTYPES = ["<f4", "<f8", "<i4", "<i8", "<u1", "<c8", "|b1"]
_SHAPES = st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=3)


class TestHeaderRoundTrip:
    """publish → fetch is pickle-byte-identical to the in-band path."""

    @given(
        dtype=st.sampled_from(_DTYPES),
        shape=_SHAPES,
        order=st.sampled_from(["C", "F"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_bit_identical(self, dtype, shape, order, seed):
        rng = np.random.default_rng(seed)
        arr = np.asarray(
            rng.integers(0, 100, size=tuple(shape)), dtype=np.dtype(dtype), order=order
        )
        header = publish(arr, digest=True)
        try:
            out = fetch(header)
        finally:
            release_headers([header])
        # The transported array must pickle exactly like the array the
        # classic pickle plane would have produced.
        assert pickle.dumps(out) == pickle.dumps(pickle.loads(pickle.dumps(arr)))
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_non_contiguous_matches_pickle_semantics(self):
        base = np.arange(120, dtype=np.float64).reshape(10, 12)
        arr = base[::2, ::3]  # non-contiguous view
        assert not arr.flags.c_contiguous and not arr.flags.f_contiguous
        header = publish(arr)
        try:
            out = fetch(header)
        finally:
            release_headers([header])
        # numpy's own reduction flattens non-contiguous arrays to C.
        assert pickle.dumps(out) == pickle.dumps(pickle.loads(pickle.dumps(arr)))

    def test_fortran_order_preserved(self):
        arr = np.asfortranarray(np.arange(24, dtype=np.float32).reshape(4, 6))
        header = publish(arr)
        try:
            out = fetch(header)
        finally:
            release_headers([header])
        assert out.flags.f_contiguous
        assert pickle.dumps(out) == pickle.dumps(arr)

    def test_digest_mismatch_raises(self):
        arr = np.arange(32, dtype=np.float64)
        header = publish(arr, digest=True)
        try:
            reg = process_registry()
            shm = reg.attach(header.segment)
            try:
                shm.buf[0] = (shm.buf[0] + 1) % 256  # corrupt in place
            finally:
                shm.close()
            with pytest.raises(DataPlaneError):
                fetch(header)
        finally:
            release_headers([header])

    def test_truncated_segment_raises(self):
        arr = np.arange(16, dtype=np.float64)
        header = publish(arr)
        lying = ShmHeader(
            segment=header.segment,
            dtype=header.dtype,
            shape=(1024, 1024),
            order="C",
            nbytes=1024 * 1024 * 8,
        )
        try:
            with pytest.raises(DataPlaneError):
                fetch(lying)
        finally:
            release_headers([header])


class TestDumpsLoads:
    def test_nested_payload_round_trip(self):
        rng = np.random.default_rng(5)
        payload = {
            "images": [rng.random((8, 8)) for _ in range(3)],
            "meta": ("tag", 42, None),
            "small": np.arange(3),
        }
        blob, headers = dataplane.dumps(payload, min_bytes=1)
        assert len(headers) == 4  # three images + the small array
        out, segments = dataplane.loads(blob, materialize=True, unlink=True)
        assert segments == []
        assert pickle.dumps(out) == pickle.dumps(pickle.loads(pickle.dumps(payload)))

    def test_small_arrays_stay_inline(self):
        payload = [np.arange(4, dtype=np.uint8)]
        blob, headers = dataplane.dumps(payload, min_bytes=1024)
        assert headers == []
        out, segments = dataplane.loads(blob)
        assert segments == []
        assert np.array_equal(out[0], payload[0])

    def test_views_are_zero_copy_and_read_only(self):
        arr = np.arange(64, dtype=np.float64)
        blob, headers = dataplane.dumps([arr], min_bytes=1)
        try:
            out, segments = dataplane.loads(blob, materialize=False)
            assert len(segments) == 1
            view = out[0]
            assert not view.flags.writeable
            assert not view.flags.owndata  # backed by the segment, not a copy
            with pytest.raises((ValueError, RuntimeError)):
                view[0] = 1.0
            assert np.array_equal(view, arr)
            del out, view
            close_segments(segments)
        finally:
            release_headers(headers)

    def test_fetch_view_round_trip(self):
        arr = np.arange(50, dtype=np.int32).reshape(5, 10)
        header = publish(arr, digest=True)
        try:
            view, shm = fetch_view(header)
            assert np.array_equal(view, arr)
            del view
            close_segments([shm])
        finally:
            release_headers([header])

    def test_release_is_idempotent(self):
        arr = np.arange(8, dtype=np.float64)
        header = publish(arr)
        release_headers([header])
        release_headers([header])  # double release must be harmless

    def test_reap_leaked_cleans_owned_segments(self):
        arr = np.arange(256, dtype=np.float64)
        publish(arr)
        publish(arr)
        reg = MetricsRegistry()
        with use_metrics(reg):
            assert dataplane.reap_leaked("test") == 2
        assert (
            reg.counter("repro_dataplane_reaped_total", where="test").value == 2
        )
        assert dataplane.reap_leaked("test") == 0


class TestShardMapZeroCopy:
    def _items(self, n=7, seed=3):
        rng = np.random.default_rng(seed)
        return [rng.random((13, 11)).astype(np.float32) for _ in range(n)]

    def test_shm_plane_bit_identical_to_serial(self):
        items = self._items()
        out = shard_map("t", _scale, items, _plan(data_plane="shm"))
        assert pickle.dumps(out) == pickle.dumps(_scale(items))

    def test_shm_plane_matches_pickle_plane(self):
        items = self._items()
        shm_out = shard_map("t", _scale, items, _plan(data_plane="shm"))
        pkl_out = shard_map("t", _scale, items, _plan(data_plane="pickle"))
        assert pickle.dumps(shm_out) == pickle.dumps(pkl_out)

    def test_awkward_arrays_bit_identical(self):
        """Non-contiguous, Fortran-order and zero-size payloads all take
        the zero-copy plane and still match the serial bytes."""
        base = np.arange(720, dtype=np.float64).reshape(24, 30)
        items = [
            base[::2, ::3],                      # non-contiguous view
            np.asfortranarray(base[:6, :5]),     # Fortran-contiguous
            np.empty((0, 4), dtype=np.float32),  # zero-size
            base.copy(),                         # plain C-contiguous
        ]
        out = shard_map("t", _scale, items, _plan(batch=1))
        assert pickle.dumps(out) == pickle.dumps(_scale(items))

    def test_transport_metrics_counted(self):
        items = self._items(n=4)
        reg = MetricsRegistry()
        with use_metrics(reg):
            shard_map("t", _scale, items, _plan(batch=2))
        assert reg.counter("repro_dataplane_segments_total", dir="out").value > 0
        assert reg.counter("repro_dataplane_segments_total", dir="back").value > 0
        assert reg.counter("repro_dataplane_bytes_total", dir="out").value >= sum(
            i.nbytes for i in items
        )

    def test_unavailable_falls_back_to_pickle_plane(self, monkeypatch):
        monkeypatch.setattr(dataplane, "_AVAILABLE", False)
        items = self._items(n=4)
        reg = MetricsRegistry()
        with use_metrics(reg):
            out = shard_map("t", _scale, items, _plan(batch=2))
        monkeypatch.setattr(dataplane, "_AVAILABLE", True)
        assert pickle.dumps(out) == pickle.dumps(_scale(items))
        assert (
            reg.counter(
                "repro_dataplane_fallback_total", reason="shm-unavailable"
            ).value
            > 0
        )

    def test_worker_exception_releases_segments(self):
        items = self._items(n=6)
        with pytest.raises(ValueError, match="worker exploded"):
            shard_map("t", _boom, items, _plan(batch=2))
        # the autouse fixture asserts /dev/shm is clean afterwards


FAST = PipelineConfig(denoise_iterations=10, align_search_px=2, align_baselines=(1, 2))


class TestFusedCampaign:
    """Stage fusion rides the shard pool without changing a single byte."""

    @pytest.fixture(scope="class")
    def job(self):
        return ChipJob(
            name="fused",
            spec=SaRegionSpec(name="dp_classic", topology="classic", n_pairs=1),
            campaign=FibSemCampaign(
                slice_thickness_nm=12.0, sem=SemParameters(dwell_time_us=6.0)
            ),
        )

    @pytest.fixture(scope="class")
    def serial_bytes(self, job):
        report = run_campaign([job], config=FAST, workers=1)
        return pickle.dumps(report.results())

    def test_fused_shm_campaign_matches_serial(self, job, serial_bytes):
        sharded = run_campaign(
            [job],
            config=FAST.replaced(shard=ShardPlan(slices=True, workers=2)),
            workers=1,
        )
        assert pickle.dumps(sharded.results()) == serial_bytes

    def test_unfused_pickle_plane_matches_serial(self, job, serial_bytes):
        sharded = run_campaign(
            [job],
            config=FAST.replaced(shard=ShardPlan(
                slices=True, workers=2, fuse=False, data_plane="pickle"
            )),
            workers=1,
        )
        assert pickle.dumps(sharded.results()) == serial_bytes

    def test_fusion_skips_denoise_and_qc_pool_trips(self, job):
        from repro.runtime import ResiliencePolicy

        # force_qc engages the QC gate without a fault plan (an *active*
        # plan would disable fusion), so both fused stages fire.
        policy = ResiliencePolicy(force_qc=True)
        serial = run_campaign([job], config=FAST, workers=1, policy=policy)
        reg = MetricsRegistry()
        with use_metrics(reg):
            fused = run_campaign(
                [job],
                config=FAST.replaced(shard=ShardPlan(slices=True, workers=2)),
                workers=1,
                policy=policy,
            )
        assert (
            reg.counter("repro_dataplane_fused_total", stage="denoise").value >= 1
        )
        assert reg.counter("repro_dataplane_fused_total", stage="qc").value >= 1
        assert pickle.dumps(fused.results()) == pickle.dumps(serial.results())


class TestCampaignSegmentHygiene:
    """Quarantined and timed-out campaigns leave /dev/shm spotless (the
    autouse fixture asserts it after every test here)."""

    def _job(self, fault_plan=None):
        return ChipJob(
            name="hygiene",
            spec=SaRegionSpec(name="dp_hygiene", topology="classic", n_pairs=1),
            campaign=FibSemCampaign(
                slice_thickness_nm=16.0, sem=SemParameters(dwell_time_us=6.0)
            ),
            y_stop_nm=300.0,
            fault_plan=fault_plan,
        )

    def test_quarantined_campaign_leaves_no_segments(self):
        from repro.faults import FaultPlan
        from repro.runtime import ResiliencePolicy

        poison = FaultPlan(seed=3, drop_rate=0.3, drift_spike_rate=0.2)
        report = run_campaign(
            [self._job(poison)],
            config=FAST.replaced(shard=ShardPlan(slices=True, workers=2)),
            workers=1,
            policy=ResiliencePolicy(max_retries=0),
        )
        assert report.quarantined  # the chip really did fail

    def test_timed_out_campaign_leaves_no_segments(self):
        from repro.runtime import ResiliencePolicy

        report = run_campaign(
            [self._job()],
            config=FAST.replaced(shard=ShardPlan(slices=True, workers=2)),
            workers=1,
            policy=ResiliencePolicy(chip_timeout_s=1e-6),
        )
        assert report.quarantined
