"""FIB slicing campaigns and stack metadata."""

import numpy as np
import pytest

from repro.errors import ImagingError
from repro.imaging.fib import (
    FibSemCampaign,
    acquire_stack,
    alignment_noise_budget,
    _shift_image,
)
from repro.imaging.sem import SemParameters
from repro.imaging.voxel import voxelize


@pytest.fixture(scope="module")
def small_volume(request):
    cell = request.getfixturevalue("classic_cell")
    return voxelize(cell, voxel_nm=8.0)


class TestCampaign:
    def test_bad_thickness_rejected(self):
        with pytest.raises(ImagingError):
            FibSemCampaign(slice_thickness_nm=0.0)

    def test_slices_for(self):
        c = FibSemCampaign(slice_thickness_nm=10.0)
        assert c.slices_for(1000.0) == 100


class TestShift:
    def test_shift_moves_content(self):
        img = np.zeros((10, 8), dtype=np.float32)
        img[4, 3] = 1.0
        out = _shift_image(img.copy(), 2, -1)
        assert out[6, 2] == 1.0

    def test_zero_shift_identity(self):
        img = np.random.default_rng(1).random((6, 6)).astype(np.float32)
        out = _shift_image(img.copy(), 0, 0)
        assert np.array_equal(out, img)


class TestAcquisition:
    def test_stack_geometry(self, small_volume):
        campaign = FibSemCampaign(slice_thickness_nm=16.0, sem=SemParameters())
        stack = acquire_stack(small_volume, campaign)
        assert len(stack) == -(-small_volume.shape[1] // 2)  # ceil division
        assert stack.image_shape == (small_volume.shape[0], small_volume.shape[2])
        assert stack.slice_thickness_nm == pytest.approx(16.0)
        assert len(stack.true_drift_px) == len(stack)
        assert len(stack.slice_y_nm) == len(stack)

    def test_drift_bounded(self, small_volume):
        campaign = FibSemCampaign(slice_thickness_nm=16.0, max_drift_px=3, drift_step_px=1.5)
        stack = acquire_stack(small_volume, campaign)
        for dx, dz in stack.true_drift_px:
            assert abs(dx) <= 3 and abs(dz) <= 3

    def test_zero_drift_campaign(self, small_volume):
        campaign = FibSemCampaign(slice_thickness_nm=16.0, drift_step_px=0.0)
        stack = acquire_stack(small_volume, campaign)
        assert all(d == (0, 0) for d in stack.true_drift_px)

    def test_deterministic_by_seed(self, small_volume):
        c = FibSemCampaign(slice_thickness_nm=16.0, seed=5)
        a = acquire_stack(small_volume, c)
        b = acquire_stack(small_volume, c)
        assert np.array_equal(a.images[3], b.images[3])

    def test_y_range_restriction(self, small_volume):
        campaign = FibSemCampaign(slice_thickness_nm=16.0)
        full = acquire_stack(small_volume, campaign)
        y0 = small_volume.origin_y_nm
        partial = acquire_stack(small_volume, campaign, y_start_nm=y0, y_stop_nm=y0 + 200.0)
        assert len(partial) < len(full)

    def test_empty_range_rejected(self, small_volume):
        y0 = small_volume.origin_y_nm
        with pytest.raises(ImagingError):
            acquire_stack(small_volume, FibSemCampaign(), y_start_nm=y0 + 100, y_stop_nm=y0 + 100)

    def test_beam_time_positive(self, small_volume):
        stack = acquire_stack(small_volume, FibSemCampaign(slice_thickness_nm=16.0))
        assert stack.beam_time_hours() > 0


class TestBudget:
    def test_paper_number(self):
        """B5: 30 nm wires, cross-section 130x taller → 0.77 %."""
        assert alignment_noise_budget(30.0, 30.0 * 130.0) == pytest.approx(1 / 130)

    def test_invalid_height(self):
        with pytest.raises(ImagingError):
            alignment_noise_budget(30.0, 0.0)


class TestFieldOfView:
    """§IV-B: campaigns image the ROI between MATs, not whole dies."""

    def test_x_crop_narrows_images(self, small_volume):
        campaign = FibSemCampaign(slice_thickness_nm=16.0)
        full = acquire_stack(small_volume, campaign)
        x0 = small_volume.origin_x_nm + 400.0
        x1 = small_volume.origin_x_nm + 1600.0
        cropped = acquire_stack(small_volume, campaign, x_start_nm=x0, x_stop_nm=x1)
        assert cropped.image_shape[0] < full.image_shape[0]
        assert cropped.x_offset_nm == pytest.approx(400.0, abs=small_volume.voxel_nm)

    def test_empty_x_range_rejected(self, small_volume):
        x = small_volume.origin_x_nm + 500.0
        with pytest.raises(ImagingError):
            acquire_stack(small_volume, FibSemCampaign(), x_start_nm=x, x_stop_nm=x)

    def test_full_view_has_zero_offset(self, small_volume):
        stack = acquire_stack(small_volume, FibSemCampaign(slice_thickness_nm=16.0))
        assert stack.x_offset_nm == 0.0
