"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
            assert issubclass(obj, errors.ReproError), name


def test_design_rule_violation_message():
    exc = errors.DesignRuleViolation("METAL1 spacing", "2 shapes at 3nm")
    assert "METAL1 spacing" in str(exc)
    assert "3nm" in str(exc)
    assert exc.rule == "METAL1 spacing"


def test_convergence_error_fields():
    exc = errors.ConvergenceError(time_ns=1.25, residual=3e-3, iterations=80)
    assert exc.time_ns == 1.25
    assert exc.iterations == 80
    assert "1.25" in str(exc)


def test_alignment_budget_exceeded():
    exc = errors.AlignmentBudgetExceeded(0.02, 0.0077)
    assert exc.residual_fraction == 0.02
    assert exc.budget_fraction == 0.0077
    assert isinstance(exc, errors.PipelineError)


def test_unknown_chip_error():
    exc = errors.UnknownChipError("Z9")
    assert "Z9" in str(exc)
    assert isinstance(exc, errors.EvaluationError)


def test_unknown_paper_error():
    with pytest.raises(errors.ReproError):
        raise errors.UnknownPaperError("missing")


class TestStageErrors:
    """Typed per-stage failures carry chip/stage/slice context."""

    def test_context_appended_to_message(self):
        exc = errors.AcquisitionError(
            "stack failed QC", chip_id="chip-a", stage="acquire", slice_index=7
        )
        assert exc.chip_id == "chip-a"
        assert exc.stage == "acquire"
        assert exc.slice_index == 7
        text = str(exc)
        assert "chip=chip-a" in text and "stage=acquire" in text and "slice=7" in text

    def test_context_is_optional(self):
        exc = errors.SegmentationError("no lanes")
        assert exc.chip_id is None and exc.slice_index is None
        assert str(exc).startswith("no lanes")

    def test_details_dict_travels(self):
        exc = errors.AcquisitionError(
            "boom", stage="acquire", details={"attempts": 3, "failed_slices": [1, 2]}
        )
        assert exc.details["attempts"] == 3

    @pytest.mark.parametrize("new,legacy", [
        (errors.AcquisitionError, errors.ImagingError),
        (errors.AlignmentError, errors.PipelineError),
        (errors.SegmentationError, errors.PipelineError),
        (errors.RevEngError, errors.ReverseEngineeringError),
    ])
    def test_subclasses_legacy_types_one_cycle(self, new, legacy):
        """Old `except ImagingError` etc. keeps catching for one cycle."""
        assert issubclass(new, errors.StageError)
        assert issubclass(new, legacy)
        with pytest.raises(legacy):
            raise new("compat")

    def test_timeout_is_a_stage_error(self):
        exc = errors.StageTimeoutError(
            "chip deadline exceeded", chip_id="x", stage="align",
            details={"completed_stages": ["layout", "acquire"]},
        )
        assert isinstance(exc, errors.StageError)
        assert exc.details["completed_stages"] == ["layout", "acquire"]

    def test_alignment_budget_is_an_alignment_error(self):
        exc = errors.AlignmentBudgetExceeded(0.02, 0.01, chip_id="c")
        assert isinstance(exc, errors.AlignmentError)
        assert exc.chip_id == "c"
