"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
            assert issubclass(obj, errors.ReproError), name


def test_design_rule_violation_message():
    exc = errors.DesignRuleViolation("METAL1 spacing", "2 shapes at 3nm")
    assert "METAL1 spacing" in str(exc)
    assert "3nm" in str(exc)
    assert exc.rule == "METAL1 spacing"


def test_convergence_error_fields():
    exc = errors.ConvergenceError(time_ns=1.25, residual=3e-3, iterations=80)
    assert exc.time_ns == 1.25
    assert exc.iterations == 80
    assert "1.25" in str(exc)


def test_alignment_budget_exceeded():
    exc = errors.AlignmentBudgetExceeded(0.02, 0.0077)
    assert exc.residual_fraction == 0.02
    assert exc.budget_fraction == 0.0077
    assert isinstance(exc, errors.PipelineError)


def test_unknown_chip_error():
    exc = errors.UnknownChipError("Z9")
    assert "Z9" in str(exc)
    assert isinstance(exc, errors.EvaluationError)


def test_unknown_paper_error():
    with pytest.raises(errors.ReproError):
        raise errors.UnknownPaperError("missing")
