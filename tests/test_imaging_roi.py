"""Blind ROI identification (Fig 6)."""

import pytest

from repro.errors import ImagingError
from repro.imaging.roi import classify_probe, identify_roi
from repro.imaging.voxel import voxelize
from repro.layout import SaRegionSpec, generate_chip_layout


@pytest.fixture(scope="module")
def chip_volume():
    chip = generate_chip_layout(SaRegionSpec(topology="classic", n_pairs=2), mat_rows=8)
    vol = voxelize(chip, voxel_nm=8.0)
    offset = float(chip.annotations["region_offset_nm"])
    width = float(chip.annotations["region_width_nm"])
    return vol, offset, width


class TestClassify:
    def test_mat_probe(self, chip_volume):
        vol, offset, _w = chip_volume
        probe = classify_probe(vol, offset / 2)
        assert probe.kind == "mat"
        assert probe.capacitor_fraction > 0

    def test_logic_probe(self, chip_volume):
        vol, offset, width = chip_volume
        probe = classify_probe(vol, offset + width / 4)
        assert probe.kind == "logic"
        assert probe.device_fraction > 0

    def test_out_of_volume_rejected(self, chip_volume):
        vol, _o, _w = chip_volume
        with pytest.raises(ImagingError):
            classify_probe(vol, -1e6)


class TestSearch:
    def test_finds_the_sa_region(self, chip_volume):
        vol, offset, width = chip_volume
        result = identify_roi(vol, probe_step_nm=300.0)
        x0, x1 = result.roi
        # The recovered ROI overlaps the true region substantially.
        true_mid = offset + width / 2
        assert x0 < true_mid < x1
        assert result.roi_width_nm == pytest.approx(width, rel=0.35)

    def test_cost_is_bounded(self, chip_volume):
        """The identification lasts 'no more than 2 hours per chip'."""
        vol, _o, _w = chip_volume
        result = identify_roi(vol, probe_step_nm=300.0)
        assert result.probe_count < 80
        assert result.estimated_hours < 2.0

    def test_refinement_tightens_roi(self, chip_volume):
        vol, offset, width = chip_volume
        coarse = identify_roi(vol, probe_step_nm=300.0, refine_steps=0)
        fine = identify_roi(vol, probe_step_nm=300.0, refine_steps=6)
        err_coarse = abs(coarse.roi_width_nm - width)
        err_fine = abs(fine.roi_width_nm - width)
        assert err_fine <= err_coarse + 1.0

    def test_empty_volume_raises(self):
        import numpy as np

        from repro.imaging.voxel import VoxelVolume

        empty = VoxelVolume(
            data=np.zeros((200, 20, 20), dtype=np.uint8),
            voxel_nm=8.0, origin_x_nm=0.0, origin_y_nm=0.0,
        )
        with pytest.raises(ImagingError):
            identify_roi(empty, probe_step_nm=200.0)
