"""The append-mode perf history log and its regression gate.

Covers :mod:`repro.perf.history` — metric flattening per probe schema,
the JSONL append/load round trip (malformed-line tolerance), the
trailing-median gate (abstains below ``min_history``, flags >threshold,
ignores other environments) — and drives the ``python -m repro.perf``
CLI end-to-end with a faked benchmark runner to prove a synthetic 2x
kernel slowdown exits non-zero under ``--check-regression``.
"""

import json

import pytest

from repro.perf import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA,
    RssSampler,
    check_regression,
    environment_fingerprint,
    key_metrics,
    load_history,
    record_run,
    render_regressions,
)


def _pipeline_report(ns_per_px: float = 100.0) -> dict:
    return {
        "schema": "repro-perf/1",
        "scale": "tiny",
        "created_unix": 1754600000,
        "kernels": [
            {"name": "mi_register", "ns_per_pixel": ns_per_px},
            {"name": "tv_denoise", "ns_per_pixel": ns_per_px * 2},
        ],
        "pipeline": {"ns_per_pixel": ns_per_px * 10},
        "campaign": {"wall_seconds": 3.0},
    }


class TestKeyMetrics:
    def test_pipeline_probe(self):
        metrics = key_metrics(_pipeline_report(100.0))
        assert metrics == {
            "kernel:mi_register:ns_per_px": 100.0,
            "kernel:tv_denoise:ns_per_px": 200.0,
            "pipeline:ns_per_px": 1000.0,
            "campaign:wall_seconds": 3.0,
        }

    def test_analog_probe(self):
        report = {
            "schema": "repro-perf-analog/1",
            "solver": {"fast_seconds": 0.5},
            "sweep": {"cold_wall_seconds": 2.0},
        }
        assert key_metrics(report) == {
            "solver:fast_seconds": 0.5,
            "sweep:cold_wall_seconds": 2.0,
        }

    def test_dataplane_probe(self):
        report = {
            "schema": "repro-perf-dataplane/1",
            "serial": {"wall_seconds": 4.0},
            "pickle_plane": {"wall_seconds": 2.0},
            "shm_plane": {"wall_seconds": 1.0},
        }
        assert key_metrics(report) == {
            "serial:wall_seconds": 4.0,
            "pickle_plane:wall_seconds": 2.0,
            "shm_plane:wall_seconds": 1.0,
        }

    def test_catalog_probe(self):
        report = {"schema": "repro-perf-catalog/1", "cold_wall_seconds": 7.5}
        assert key_metrics(report) == {"cold_wall_seconds": 7.5}

    def test_unknown_schema_records_nothing(self):
        assert key_metrics({"schema": "mystery/9"}) == {}

    def test_non_positive_values_dropped(self):
        report = _pipeline_report()
        report["kernels"][0]["ns_per_pixel"] = 0.0
        report["kernels"][1]["ns_per_pixel"] = None
        metrics = key_metrics(report)
        assert "kernel:mi_register:ns_per_px" not in metrics
        assert "kernel:tv_denoise:ns_per_px" not in metrics


class TestRecordAndLoad:
    def test_append_round_trip(self, tmp_path):
        path = tmp_path / "hist" / "BENCH_history.jsonl"  # parent must be made
        entry = record_run(_pipeline_report(), path)
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["probe"] == "pipeline"
        assert entry["environment"] == environment_fingerprint()
        assert entry["scale"] == "tiny"
        record_run(_pipeline_report(120.0), path)
        loaded = load_history(path)
        assert len(loaded) == 2
        assert loaded[0]["metrics"]["kernel:mi_register:ns_per_px"] == 100.0
        assert loaded[1]["metrics"]["kernel:mi_register:ns_per_px"] == 120.0

    def test_load_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        record_run(_pipeline_report(), path)
        with path.open("a") as fh:
            fh.write("{torn line\n")
            fh.write("\n")
            fh.write(json.dumps({"schema": "other/1"}) + "\n")
        record_run(_pipeline_report(), path)
        assert len(load_history(path)) == 2

    def test_load_missing_file(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_default_path_is_repo_convention(self):
        assert DEFAULT_HISTORY_PATH == "BENCH_history.jsonl"

    def test_environment_fingerprint_keys(self):
        env = environment_fingerprint()
        assert set(env) == {"python", "numpy", "machine"}
        assert all(isinstance(v, str) and v for v in env.values())


class TestCheckRegression:
    def test_abstains_without_history(self, tmp_path):
        path = tmp_path / "h.jsonl"
        assert check_regression(_pipeline_report(200.0), path) == []

    def test_abstains_below_min_history(self, tmp_path):
        path = tmp_path / "h.jsonl"
        record_run(_pipeline_report(100.0), path)
        assert check_regression(_pipeline_report(200.0), path) == []

    def test_flags_2x_slowdown(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for _ in range(3):
            record_run(_pipeline_report(100.0), path)
        regressions = check_regression(_pipeline_report(200.0), path)
        metrics = {r["metric"] for r in regressions}
        # Every per-pixel timing doubled; the campaign probe did not.
        assert "kernel:mi_register:ns_per_px" in metrics
        assert "pipeline:ns_per_px" in metrics
        assert "campaign:wall_seconds" not in metrics
        flagged = next(r for r in regressions
                       if r["metric"] == "kernel:mi_register:ns_per_px")
        assert flagged["current"] == 200.0
        assert flagged["baseline_median"] == 100.0
        assert flagged["ratio"] == pytest.approx(2.0)
        assert flagged["samples"] == 3

    def test_passes_below_threshold(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for _ in range(3):
            record_run(_pipeline_report(100.0), path)
        assert check_regression(_pipeline_report(120.0), path) == []

    def test_other_environment_not_comparable(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for _ in range(3):
            entry = record_run(_pipeline_report(100.0), path)
        # Rewrite history as if it came from another machine.
        foreign = dict(entry, environment=dict(entry["environment"],
                                               machine="riscv128"))
        path.write_text("".join(
            json.dumps(foreign, sort_keys=True) + "\n" for _ in range(3)
        ))
        assert check_regression(_pipeline_report(300.0), path) == []

    def test_window_uses_trailing_entries(self, tmp_path):
        path = tmp_path / "h.jsonl"
        # Ancient slow history followed by 5 fast runs: the 5-entry
        # window must baseline on the fast era.
        record_run(_pipeline_report(1000.0), path)
        for _ in range(5):
            record_run(_pipeline_report(100.0), path)
        regressions = check_regression(_pipeline_report(200.0), path)
        flagged = next(r for r in regressions
                       if r["metric"] == "kernel:mi_register:ns_per_px")
        assert flagged["baseline_median"] == 100.0

    def test_custom_threshold(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for _ in range(3):
            record_run(_pipeline_report(100.0), path)
        assert check_regression(_pipeline_report(120.0), path, threshold=1.1)
        assert not check_regression(_pipeline_report(120.0), path, threshold=1.3)

    def test_render(self, tmp_path):
        assert render_regressions([]) == "no regressions against trailing history"
        path = tmp_path / "h.jsonl"
        for _ in range(3):
            record_run(_pipeline_report(100.0), path)
        text = render_regressions(check_regression(_pipeline_report(200.0), path))
        assert "REGRESSION pipeline:kernel:mi_register:ns_per_px" in text
        assert "2.00x > 1.50x gate" in text


class TestRssSampler:
    def test_samples_and_peak(self):
        seen = []
        with RssSampler(interval=0.01, on_sample=seen.append) as sampler:
            list(range(10000))
        assert sampler.samples >= 1  # final sample guaranteed on exit
        assert sampler.peak_bytes > 0
        assert seen, "on_sample never called"
        assert all(isinstance(s, int) and s > 0 for s in seen)
        assert max(seen) == sampler.peak_bytes


# ---------------------------------------------------------------------------
# the CLI gate


class _FakeKernel:
    outputs_match = True
    name = "mi_register"


class _FakeReport:
    """Stands in for BenchReport: just enough surface for perf.__main__."""

    kernels = [_FakeKernel()]
    shard = None

    def __init__(self, ns_per_px: float) -> None:
        self._ns = ns_per_px

    def as_dict(self) -> dict:
        return _pipeline_report(self._ns)


class TestCliGate:
    @pytest.fixture()
    def fake_bench(self, monkeypatch):
        """Patch the benchmark runner so the CLI is instant + deterministic."""
        import repro.perf.__main__ as perf_main

        current = {"ns": 100.0}
        monkeypatch.setattr(
            perf_main, "run_benchmarks",
            lambda scale, include_campaign: _FakeReport(current["ns"]),
        )
        monkeypatch.setattr(
            perf_main, "write_report", lambda report, out: out)
        monkeypatch.setattr(
            perf_main, "render_report", lambda report: "(fake report)")
        return current

    def test_synthetic_2x_slowdown_exits_nonzero(self, fake_bench, tmp_path, capsys):
        from repro.perf.__main__ import main

        history = str(tmp_path / "BENCH_history.jsonl")
        out = str(tmp_path / "BENCH_pipeline.json")
        base = ["--out", out, "--history", history, "--check-regression"]
        # Two clean baseline runs: gate abstains, history accumulates.
        assert main(base) == 0
        assert main(base) == 0
        assert len(load_history(history)) == 2
        # Inject the 2x kernel slowdown: the gate must fire...
        fake_bench["ns"] = 200.0
        assert main(base) == 1
        assert "REGRESSION pipeline:kernel:mi_register:ns_per_px" in (
            capsys.readouterr().err
        )
        # ...and the slow run is still recorded (history reflects reality).
        assert len(load_history(history)) == 3

    def test_no_check_records_without_gating(self, fake_bench, tmp_path):
        from repro.perf.__main__ import main

        history = str(tmp_path / "h.jsonl")
        base = ["--out", str(tmp_path / "b.json"), "--history", history]
        assert main(base) == 0
        assert main(base) == 0
        fake_bench["ns"] = 500.0
        assert main(base) == 0  # recorded, not gated
        assert len(load_history(history)) == 3

    def test_no_history_skips_append(self, fake_bench, tmp_path, monkeypatch):
        from repro.perf.__main__ import main

        monkeypatch.chdir(tmp_path)
        assert main(["--out", str(tmp_path / "b.json"), "--no-history"]) == 0
        assert not (tmp_path / DEFAULT_HISTORY_PATH).exists()
