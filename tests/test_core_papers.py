"""The Table II paper corpus and inaccuracy bookkeeping."""

import pytest

from repro.core.papers import PAPERS, Inaccuracy, OverheadFormula, paper, papers_with
from repro.errors import UnknownPaperError


class TestCorpus:
    def test_thirteen_papers(self):
        assert len(PAPERS) == 13

    def test_years_span_a_decade(self):
        years = [p.venue_year for p in PAPERS.values()]
        assert min(years) == 2013 and max(years) == 2023

    def test_unknown_paper(self):
        with pytest.raises(UnknownPaperError):
            paper("rowhammer")

    @pytest.mark.parametrize(
        "key,inaccs",
        [
            ("charm", {"I5"}),
            ("rb_dec", {"I4", "I5"}),
            ("ambit", {"I1", "I2", "I5"}),
            ("dracc", {"I1", "I2", "I5"}),
            ("graphide", {"I1", "I2", "I5"}),
            ("inmem_lowcost", {"I1", "I2", "I5"}),
            ("elp2im", {"I2", "I3", "I5"}),
            ("clr_dram", {"I2", "I5"}),
            ("simdram", {"I1", "I2", "I5"}),
            ("nov_dram", {"I4", "I5"}),
            ("pf_dram", {"I5"}),
            ("rega", {"I2", "I4", "I5"}),
            ("cooldram", {"I1", "I2", "I3", "I5"}),
        ],
    )
    def test_inaccuracy_columns_match_table2(self, key, inaccs):
        p = paper(key)
        assert {i.name for i in p.inaccuracies} == inaccs

    def test_every_paper_misses_ocsa(self):
        """§VI-B: 'no paper includes the OCSA topology in their studies'."""
        assert len(papers_with(Inaccuracy.I5)) == 13

    def test_ddr3_papers_have_no_error_column(self):
        for key in ("charm", "rb_dec", "ambit", "elp2im"):
            assert paper(key).ddr == 3
            assert not paper(key).error_applicable

    def test_ddr4_papers_have_error_column(self):
        for key in ("dracc", "rega", "cooldram", "pf_dram"):
            assert paper(key).error_applicable

    def test_i1_implies_mat_sa_formula(self):
        for p in papers_with(Inaccuracy.I1):
            assert p.formula is OverheadFormula.MAT_SA_DOUBLE

    def test_original_overheads_small(self):
        """'Such large errors occur due to the (often) very small overheads
        reported by the papers (e.g., 0.4 % [CoolDRAM])'."""
        for p in PAPERS.values():
            assert 0.001 <= p.original_overhead <= 0.05
        assert paper("cooldram").original_overhead < 0.005
