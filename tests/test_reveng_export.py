"""Recovered-layout GDSII export."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.layout import read_gds
from repro.layout.elements import Layer
from repro.reveng.export import export_recovered_gds, features_to_cell, mask_to_rects
from repro.reveng.features import PlanarFeatures


class TestMaskToRects:
    def test_single_block(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[2:6, 3:8] = True
        rects = mask_to_rects(mask, pixel_nm=10.0)
        assert len(rects) == 1
        assert rects[0].x0 == 20 and rects[0].x1 == 60
        assert rects[0].y0 == 30 and rects[0].y1 == 80

    def test_l_shape_two_rects(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[0:6, 0:2] = True
        mask[0:2, 0:8] = True
        rects = mask_to_rects(mask, pixel_nm=1.0)
        total = sum(r.area for r in rects)
        assert total == pytest.approx(mask.sum())

    def test_empty_mask(self):
        assert mask_to_rects(np.zeros((5, 5), dtype=bool), 1.0) == []

    def test_origin_offset(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 1] = True
        (rect,) = mask_to_rects(mask, pixel_nm=2.0, origin_x_nm=100.0, origin_y_nm=50.0)
        assert rect.x0 == 102.0 and rect.y0 == 52.0

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_exact_cover_property(self, seed):
        """The rectangles reproduce the mask exactly, pixel for pixel."""
        rng = np.random.default_rng(seed)
        mask = rng.random((16, 16)) > 0.6
        rects = mask_to_rects(mask, pixel_nm=1.0)
        rebuilt = np.zeros_like(mask)
        for r in rects:
            rebuilt[int(r.x0):int(r.x1), int(r.y0):int(r.y1)] = True
        assert np.array_equal(rebuilt, mask)
        # And no double-covering: total area equals the pixel count.
        assert sum(r.area for r in rects) == pytest.approx(mask.sum())


class TestExport:
    def test_round_trip_through_gds(self, tmp_path, ocsa_cell):
        features = PlanarFeatures.from_cell(ocsa_cell, pixel_nm=6.0)
        path = tmp_path / "recovered.gds"
        count = export_recovered_gds(features, path, name="ocsa_recovered")
        assert count > 100
        lib = read_gds(path)
        assert lib.structure == "ocsa_recovered"
        assert lib.name == "HIFIDRAM_RECOVERED"
        # Layer areas survive the mask → rect → GDS round trip.
        for layer in (Layer.METAL1, Layer.METAL2, Layer.GATE):
            mask_area = features.masks[layer].sum() * 36.0  # px → nm²
            gds_area = sum(r.area for r in lib.shapes[layer])
            assert gds_area == pytest.approx(mask_area, rel=1e-6), layer

    def test_cell_element_types(self, classic_cell):
        features = PlanarFeatures.from_cell(classic_cell, pixel_nm=6.0)
        cell = features_to_cell(features)
        assert cell.wires  # metals + poly
        assert cell.vias  # contacts + via1
        assert cell.actives
        assert not cell.transistors  # semantics are gone in a recovered layout
