"""Reference SA topologies (Fig 2b, Fig 9a)."""

import pytest

from repro.circuits.netlist import DeviceType
from repro.circuits.topologies import (
    CONTROL_NETS,
    DEVICE_COUNT,
    SaSizes,
    SaTopology,
    build_classic_sa,
    build_ocsa,
    reference_corpus,
)


class TestClassic:
    def test_device_count(self):
        c = build_classic_sa()
        assert c.mos_count() == DEVICE_COUNT[SaTopology.CLASSIC] == 9

    def test_latch_cross_coupling(self):
        c = build_classic_sa()
        n1, n2 = c.device("n1"), c.device("n2")
        assert n1.nets["g"] == "BLB" and n1.nets["d"] == "BL"
        assert n2.nets["g"] == "BL" and n2.nets["d"] == "BLB"

    def test_latch_drains_on_bitlines(self):
        """Classic: no internal nodes — drains are the bitlines."""
        c = build_classic_sa()
        for name in ("n1", "p1"):
            assert c.device(name).nets["d"] == "BL"

    def test_peq_drives_three_devices(self):
        c = build_classic_sa()
        peq_devices = {dev.name for dev, pin in c.devices_on("PEQ") if pin == "g"}
        assert peq_devices == {"pre1", "pre2", "eq"}

    def test_equalizer_bridges_bitlines(self):
        c = build_classic_sa()
        eq = c.device("eq")
        assert {eq.nets["d"], eq.nets["s"]} == {"BL", "BLB"}

    def test_pmos_channels(self):
        c = build_classic_sa()
        assert c.device("p1").dtype is DeviceType.PMOS
        assert c.device("pre1").dtype is DeviceType.NMOS

    def test_psa_narrower_than_nsa(self):
        """§V-A step viii relies on pSA < nSA widths."""
        sizes = SaSizes()
        assert sizes.psa_w < sizes.nsa_w


class TestOcsa:
    def test_device_count(self):
        c = build_ocsa()
        assert c.mos_count() == DEVICE_COUNT[SaTopology.OCSA] == 12

    def test_adds_four_transistors_and_two_controls(self):
        """§V-A: OCSA adds 4 transistors and 2 control signals."""
        classic, ocsa = build_classic_sa(), build_ocsa()
        # Classic has an equalizer the OCSA lacks, so +4 devices means
        # 12 = 9 - 1 + 4.
        assert ocsa.mos_count() - (classic.mos_count() - 1) == 4
        extra_controls = set(CONTROL_NETS[SaTopology.OCSA]) - set(CONTROL_NETS[SaTopology.CLASSIC])
        assert extra_controls == {"ISO", "OC", "PRE"}

    def test_latch_gates_on_bitlines_drains_isolated(self):
        """§V-A: decoupled from latch drains but not from the gates."""
        c = build_ocsa()
        n1 = c.device("n1")
        assert n1.nets["g"] == "BLB"
        assert n1.nets["d"] == "SABL"

    def test_iso_connects_own_node(self):
        c = build_ocsa()
        assert c.device("iso1").nets["s"] == "BL"
        assert c.device("iso1").nets["d"] == "SABL"

    def test_oc_crosses(self):
        c = build_ocsa()
        assert c.device("oc1").nets["s"] == "BL"
        assert c.device("oc1").nets["d"] == "SABLB"

    def test_no_equalizer(self):
        c = build_ocsa()
        names = set(c.devices)
        assert "eq" not in names

    def test_equalization_path_via_iso_and_oc(self):
        """ISO∧OC on must connect BL to BLB (the emergent equalizer)."""
        import networkx as nx

        c = build_ocsa()
        g = nx.Graph()
        for dev in c:
            if dev.dtype.is_mos and dev.nets["g"] in ("ISO", "OC"):
                g.add_edge(dev.nets["d"], dev.nets["s"])
        assert nx.has_path(g, "BL", "BLB")

    def test_precharge_standalone(self):
        c = build_ocsa()
        pre_gates = {dev.nets["g"] for dev in c if dev.role == "precharge"}
        assert pre_gates == {"PRE"}


class TestCorpus:
    def test_reference_corpus_complete(self):
        corpus = reference_corpus()
        assert set(corpus) == {SaTopology.CLASSIC, SaTopology.OCSA}

    def test_extra_events(self):
        assert SaTopology.CLASSIC.extra_events == ()
        assert SaTopology.OCSA.extra_events == ("offset_cancellation", "pre_sensing")

    def test_custom_sizes_respected(self):
        sizes = SaSizes(nsa_w=123.0)
        c = build_classic_sa(sizes)
        assert c.device("n1").params["w"] == 123.0
