"""Otsu thresholding and material segmentation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PipelineError
from repro.layout.elements import Layer
from repro.pipeline.segment import (
    _reference_multi_otsu,
    foreground_mask,
    multi_otsu,
    otsu_threshold,
    segment_materials,
)


def _bimodal(lo=0.1, hi=0.8, rng=None) -> np.ndarray:
    rng = rng or np.random.default_rng(5)
    img = np.full((64, 64), lo)
    img[16:48, 16:48] = hi
    return np.clip(img + rng.normal(0, 0.02, img.shape), 0, 1)


class TestOtsu:
    def test_threshold_separates_modes(self):
        t = otsu_threshold(_bimodal(0.1, 0.8))
        assert 0.2 < t < 0.7

    def test_empty_rejected(self):
        with pytest.raises(PipelineError):
            otsu_threshold(np.zeros((0,)))

    @given(st.floats(min_value=0.05, max_value=0.35), st.floats(min_value=0.6, max_value=0.95))
    def test_threshold_between_modes_property(self, lo, hi):
        t = otsu_threshold(_bimodal(lo, hi, rng=np.random.default_rng(1)))
        assert lo < t < hi


class TestMultiOtsu:
    def test_three_classes(self):
        img = np.concatenate([
            np.full((40, 20), 0.1),
            np.full((40, 20), 0.5),
            np.full((40, 20), 0.9),
        ], axis=1)
        img = img + np.random.default_rng(2).normal(0, 0.02, img.shape)
        t1, t2 = multi_otsu(img, classes=3)
        assert 0.1 < t1 < 0.5 < t2 < 0.9

    def test_bad_class_counts(self):
        with pytest.raises(PipelineError):
            multi_otsu(np.zeros((4, 4)), classes=1)
        with pytest.raises(PipelineError):
            multi_otsu(np.zeros((4, 4)), classes=5)

    def test_thresholds_sorted(self):
        img = _bimodal()
        ts = multi_otsu(img, classes=4, bins=48)
        assert ts == sorted(ts)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        classes=st.integers(2, 4),
        bins=st.sampled_from([16, 48, 96]),
    )
    def test_vectorized_equals_exhaustive_search(self, seed, classes, bins):
        """The broadcast search returns the exact thresholds (and tie-breaks)
        of the retained O(bins³) loop implementation."""
        rng = np.random.default_rng(seed)
        levels = rng.choice([0.1, 0.45, 0.8], size=(32, 32))
        img = np.clip(levels + rng.normal(0, 0.05, levels.shape), 0, 1)
        assert multi_otsu(img, classes=classes, bins=bins) == \
            _reference_multi_otsu(img, classes=classes, bins=bins)

    def test_degenerate_unimodal_matches_reference(self):
        img = np.full((16, 16), 0.42)
        for classes in (2, 3, 4):
            assert multi_otsu(img, classes=classes) == \
                _reference_multi_otsu(img, classes=classes)


class TestForeground:
    def test_mask_matches_square(self):
        mask = foreground_mask(_bimodal())
        assert mask[32, 32]
        assert not mask[4, 4]

    def test_speck_removal(self):
        img = np.full((32, 32), 0.1)
        img[10:20, 10:20] = 0.9
        img[2, 2] = 0.9  # single-pixel speck
        mask = foreground_mask(img, min_area_px=4)
        assert mask[15, 15]
        assert not mask[2, 2]


class TestSegmentMaterials:
    def test_rejects_flat_views(self):
        views = {
            Layer.METAL1: _bimodal(),
            Layer.CAPACITOR: np.full((64, 64), 0.1),  # empty layer
        }
        masks = segment_materials(views)
        assert masks[Layer.METAL1].any()
        assert not masks[Layer.CAPACITOR].any()
