"""The characterization engine: spec, deprecation shims, sweeps, report."""

import math
import pickle

import pytest

from repro.analog.characterizer import (
    CellResult,
    CharacterizationJob,
    CharacterizationReport,
    characterize,
    sweep_cells,
)
from repro.analog.montecarlo import (
    YieldResult,
    _reference_sensing_yield,
    sensing_yield,
)
from repro.analog.spec import CORNERS, CharacterizationSpec, DeviceCorner
from repro.circuits.topologies import SaTopology
from repro.errors import AnalogError, CampaignError
from repro.runtime.hashing import stable_hash

#: A spec small enough for real end-to-end runs in tests: 2 cells,
#: 3 trials each, a 2-level offset ladder.
FAST_SPEC = CharacterizationSpec(
    topologies=("classic", "ocsa"),
    corners=("TT",),
    trials=3,
    offset_scan_mv=(0.0, 100.0, 200.0),
)


class TestCharacterizationSpec:
    def test_coerces_strings_to_axes(self):
        spec = CharacterizationSpec(topologies="classic", corners=("tt", "ss"))
        assert spec.topologies == (SaTopology.CLASSIC,)
        assert spec.corners == (CORNERS["TT"], CORNERS["SS"])

    def test_unknown_corner_rejected(self):
        with pytest.raises(AnalogError, match="unknown device corner"):
            CharacterizationSpec(corners=("XX",))

    def test_unknown_topology_rejected(self):
        with pytest.raises(AnalogError, match="unknown SA topology"):
            CharacterizationSpec(topologies=("tilted",))

    @pytest.mark.parametrize("changes,message", [
        ({"trials": 0}, "at least one sample"),
        ({"sigma_mv": -1.0}, "non-negative"),
        ({"data": 2}, "0 or 1"),
        ({"deadline_ns": 0.0}, "positive"),
        ({"bitline_caps_f": ()}, "positive"),
        ({"offset_scan_mv": ()}, "non-empty"),
        ({"corners": (DeviceCorner("A"), DeviceCorner("A"))}, "duplicate"),
    ])
    def test_validation(self, changes, message):
        with pytest.raises(AnalogError, match=message):
            CharacterizationSpec(**changes)

    def test_tt_corner_is_identity(self):
        """bench_config at TT reproduces the historical default bench."""
        from repro.analog.sense_amp import SenseAmpConfig

        cfg = CharacterizationSpec().bench_config()
        default = SenseAmpConfig()
        assert cfg.nmos == default.nmos and cfg.pmos == default.pmos
        assert cfg.bitline_cap_f == default.bitline_cap_f

    def test_cell_token_excludes_sweep_axes(self):
        a = CharacterizationSpec(corners=("TT",))
        b = CharacterizationSpec(corners=("TT", "SS", "FF"))
        assert a.cell_token() == b.cell_token()


class TestLegacyKwargs:
    def test_legacy_kwargs_warn_naming_removal(self):
        with pytest.warns(DeprecationWarning, match="removed in repro 2.0"):
            spec = CharacterizationSpec.from_legacy_kwargs(samples=9, sigma_mv=33.0)
        assert spec.trials == 9 and spec.sigma_mv == 33.0

    def test_unknown_legacy_kwarg_is_type_error(self):
        with pytest.raises(TypeError, match="CharacterizationSpec"):
            CharacterizationSpec.from_legacy_kwargs(n_samples=9)

    def test_sensing_yield_legacy_path_matches_spec_path(self):
        spec = CharacterizationSpec(trials=4, sigma_mv=50.0, seed=3)
        via_spec = sensing_yield(SaTopology.CLASSIC, spec=spec)
        with pytest.warns(DeprecationWarning):
            via_kwargs = sensing_yield(
                SaTopology.CLASSIC, sigma_mv=50.0, samples=4, seed=3
            )
        assert via_kwargs.failures == via_spec.failures
        assert via_kwargs.samples == via_spec.samples


class TestBatchedEngineEquivalence:
    def test_batched_yield_matches_scalar_reference(self):
        """The batched Monte-Carlo engine reproduces the retained scalar
        loop exactly (same RNG stream, same failure rules)."""
        spec = CharacterizationSpec(trials=5, sigma_mv=150.0, seed=11)
        batched = sensing_yield(SaTopology.CLASSIC, spec=spec)
        reference = _reference_sensing_yield(SaTopology.CLASSIC, spec=spec)
        assert batched.failures == reference.failures
        assert batched.samples == reference.samples
        assert len(batched.latencies_ns) == spec.trials


class TestResultHashing:
    def test_yield_result_pickles_and_hashes_with_nan(self):
        y = YieldResult(
            topology=SaTopology.CLASSIC, sigma_mv=60.0, samples=3, failures=1,
            latencies_ns=(5.2, float("nan"), 6.1),
        )
        y2 = pickle.loads(pickle.dumps(y))
        assert y2.failures == y.failures
        assert math.isnan(y2.latencies_ns[1])
        # NaN != NaN breaks dataclass ==; the contract is hash stability.
        assert stable_hash(y2) == stable_hash(y)

    def test_cell_result_round_trips_nan_latencies(self):
        cell = CellResult(
            name="classic-TT", topology=SaTopology.CLASSIC, corner="TT",
            bitline_cap_f=90e-15, sensing_latency_ns=float("nan"),
            restore_latency_ns=8.0, switched_energy_fj=40.0,
            offset_tolerance_v=0.1,
            sense_yield=YieldResult(
                topology=SaTopology.CLASSIC, sigma_mv=60.0, samples=2,
                failures=2, latencies_ns=(float("nan"), float("nan")),
            ),
        )
        back = CellResult.from_dict(cell.to_dict())
        assert math.isnan(back.sensing_latency_ns)
        assert back.restore_latency_ns == 8.0
        assert stable_hash(back) == stable_hash(cell)
        assert math.isnan(cell.latency_stats()["mean_ns"])


class TestSweepCells:
    def test_grid_in_axis_order(self):
        spec = CharacterizationSpec(
            topologies=("classic",), corners=("TT", "SS"),
        )
        names = [c.name for c in sweep_cells(spec)]
        assert names == ["classic-TT", "classic-SS"]

    def test_bitline_axis_suffixes_only_when_swept(self):
        spec = CharacterizationSpec(
            topologies=("classic",), corners=("TT",),
            bitline_caps_f=(60e-15, 120e-15),
        )
        names = [c.name for c in sweep_cells(spec)]
        assert names == ["classic-TT-bl0", "classic-TT-bl1"]


class TestCharacterize:
    @pytest.fixture(scope="class")
    def reports(self, tmp_path_factory):
        """One real sweep, run cold then warm against the same cache."""
        cache = str(tmp_path_factory.mktemp("char-cache"))
        cold = characterize(FAST_SPEC, cache_dir=cache, workers=1)
        warm = characterize(FAST_SPEC, cache_dir=cache, workers=1)
        return cold, warm

    def test_sweep_completes_every_cell(self, reports):
        cold, _ = reports
        assert sorted(cold.cells) == ["classic-TT", "ocsa-TT"]
        assert not cold.degraded
        for cell in cold.cells.values():
            assert math.isfinite(cell.sensing_latency_ns)
            assert 0.0 <= cell.yield_fraction <= 1.0
            assert len(cell.sense_yield.latencies_ns) == FAST_SPEC.trials

    def test_ocsa_tolerates_more_offset(self, reports):
        """The paper's §V-A result: offset cancellation widens the margin."""
        cold, _ = reports
        assert (cold.cells["ocsa-TT"].offset_tolerance_v
                > cold.cells["classic-TT"].offset_tolerance_v)

    def test_rerun_is_fully_cached(self, reports):
        cold, warm = reports
        assert cold.cache_misses == 4  # 2 cells x (char_nominal, char_mc)
        assert warm.cache_misses == 0
        assert warm.cache_hits == 4
        assert warm.cells.keys() == cold.cells.keys()
        for name in cold.cells:
            assert stable_hash(warm.cells[name]) == stable_hash(cold.cells[name])

    def test_report_json_round_trips(self, reports):
        cold, _ = reports
        back = CharacterizationReport.from_json(cold.to_json())
        assert back.cells.keys() == cold.cells.keys()
        for name in cold.cells:
            assert stable_hash(back.cells[name]) == stable_hash(cold.cells[name])
        assert back.cache_misses == cold.cache_misses

    def test_render_mentions_cells_and_cache(self, reports):
        cold, _ = reports
        text = cold.render()
        assert "classic-TT" in text and "ocsa-TT" in text
        assert "cache" in text

    def test_unknown_cell_lookup_explains(self, reports):
        cold, _ = reports
        with pytest.raises(CampaignError, match="no sweep cell"):
            cold.cell("classic-XX")

    def test_unreadable_schema_rejected(self):
        with pytest.raises(CampaignError, match="schema"):
            CharacterizationReport.from_dict({"schema_version": "bogus/9"})
        with pytest.raises(CampaignError, match="malformed"):
            CharacterizationReport.from_json("{not json")


class TestQuarantine:
    def test_hopeless_cell_quarantines_not_crashes(self):
        """A cell whose solve cannot converge is quarantined; the rest of
        the sweep completes and the report says why."""
        spec = FAST_SPEC.replaced(max_newton=1)
        report = characterize(spec, workers=1)
        assert report.degraded
        assert not report.cells
        for record in report.quarantined.values():
            assert record.error_type == "CharacterizationError"
            assert record.stage == "char_nominal"
        with pytest.raises(CampaignError, match="quarantined"):
            report.cell("classic-TT")

    def test_fault_plans_rejected_per_cell(self):
        """Fault plans target imaging acquisition; an analog job fails its
        cell loudly instead of silently ignoring the plan."""
        from repro.faults import FaultPlan
        from repro.runtime.campaign import run_campaign

        spec = FAST_SPEC.replaced(topologies=("classic",))
        cell = sweep_cells(spec)[0]
        job = CharacterizationJob(
            name=cell.name, cell=cell, spec=spec,
            fault_plan=FaultPlan(seed=1, drop_rate=0.5),
        )
        campaign = run_campaign([job], workers=1)
        assert cell.name in campaign.quarantined
        assert "imaging acquisition" in campaign.quarantined[cell.name].message
