"""Activation event timelines (Fig 2c, Fig 9b)."""

import pytest

from repro.analog.events import (
    EventTimeline,
    classic_activation_timeline,
    ocsa_activation_timeline,
    timeline_for,
)
from repro.circuits.topologies import SaTopology


class TestClassic:
    def test_event_names(self):
        t = classic_activation_timeline()
        names = [e.name for e in t.events]
        assert names == ["charge_sharing", "latch_restore", "precharge_equalize"]

    def test_no_ocsa_events(self):
        t = classic_activation_timeline()
        assert not t.has_event("offset_cancellation")
        assert not t.has_event("pre_sensing")

    def test_control_waveforms_present(self):
        t = classic_activation_timeline()
        assert set(t.waveforms) == {"WL", "PEQ", "LA", "LAB", "VPRE"}

    def test_wl_rises_at_charge_sharing(self):
        t = classic_activation_timeline()
        cs = t.event("charge_sharing")
        wl = t.waveforms["WL"]
        assert wl.value(cs.start_ns - 0.5) == pytest.approx(0.0)
        assert wl.value(cs.start_ns + 1.0) == pytest.approx(t.vpp)

    def test_peq_low_during_activation(self):
        t = classic_activation_timeline()
        assert t.waveforms["PEQ"].value(t.event("latch_restore").start_ns) == pytest.approx(0.0)

    def test_la_lab_split_at_latch(self):
        t = classic_activation_timeline()
        mid = t.event("latch_restore").start_ns + 2.0
        assert t.waveforms["LA"].value(mid) == pytest.approx(t.vdd)
        assert t.waveforms["LAB"].value(mid) == pytest.approx(0.0)

    def test_vpre_is_half_vdd(self):
        t = classic_activation_timeline(vdd=1.2)
        assert t.vpre == pytest.approx(0.6)


class TestOcsa:
    def test_extra_events_present(self):
        t = ocsa_activation_timeline()
        assert t.has_event("offset_cancellation")
        assert t.has_event("pre_sensing")

    def test_event_order(self):
        """OC before charge sharing, pre-sensing before restore (Fig 9b)."""
        t = ocsa_activation_timeline()
        oc = t.event("offset_cancellation")
        cs = t.event("charge_sharing")
        ps = t.event("pre_sensing")
        restore = t.event("latch_restore")
        assert oc.end_ns <= cs.start_ns
        assert cs.end_ns <= ps.start_ns
        assert ps.end_ns <= restore.start_ns

    def test_charge_sharing_delayed_vs_classic(self):
        """§VI-D: charge sharing waits for the offset cancellation."""
        classic = classic_activation_timeline()
        ocsa = ocsa_activation_timeline()
        assert ocsa.charge_sharing_start() > classic.charge_sharing_start()

    def test_iso_off_until_restore(self):
        t = ocsa_activation_timeline()
        ps = t.event("pre_sensing")
        assert t.waveforms["ISO"].value(ps.start_ns + 0.5) == pytest.approx(0.0)
        restore = t.event("latch_restore")
        assert t.waveforms["ISO"].value(restore.start_ns + 1.0) == pytest.approx(t.vpp)

    def test_oc_pulses_before_wordline(self):
        t = ocsa_activation_timeline()
        oc = t.event("offset_cancellation")
        mid = (oc.start_ns + oc.end_ns) / 2
        assert t.waveforms["OC"].value(mid) == pytest.approx(t.vpp)
        assert t.waveforms["WL"].value(mid) == pytest.approx(0.0)

    def test_lab_dips_during_oc(self):
        t = ocsa_activation_timeline(oc_bias=0.12)
        oc = t.event("offset_cancellation")
        mid = (oc.start_ns + oc.end_ns) / 2
        assert t.waveforms["LAB"].value(mid) == pytest.approx(t.vpre - 0.12, abs=1e-6)

    def test_unknown_event_raises(self):
        with pytest.raises(KeyError):
            ocsa_activation_timeline().event("refresh")


class TestDispatch:
    def test_timeline_for(self):
        assert timeline_for(SaTopology.CLASSIC).topology is SaTopology.CLASSIC
        assert timeline_for(SaTopology.OCSA).topology is SaTopology.OCSA

    def test_duration(self):
        e = classic_activation_timeline().event("latch_restore")
        assert e.duration_ns == pytest.approx(e.end_ns - e.start_ns)
