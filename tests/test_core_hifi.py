"""HiFi per-chip models (the paper's enabling deliverable)."""

import pytest

from repro.circuits.topologies import SaTopology
from repro.core.chips import CHIPS, chip
from repro.core.hifi import (
    analog_model_for,
    netlist_for,
    region_spec_for,
    sa_sizes_for,
    spice_card,
)
from repro.core.model_accuracy import element_inaccuracy
from repro.layout.elements import TransistorKind


class TestSizes:
    def test_sizes_match_dataset(self):
        sizes = sa_sizes_for("C4")
        rec = chip("C4").transistor(TransistorKind.NSA)
        assert sizes.nsa_w == rec.w and sizes.nsa_l == rec.l

    def test_ocsa_chip_has_iso_oc(self):
        sizes = sa_sizes_for("B5")
        b5 = chip("B5")
        assert sizes.isolation_w == b5.transistor(TransistorKind.ISOLATION).w
        assert sizes.offset_cancel_l == b5.transistor(TransistorKind.OFFSET_CANCEL).l


class TestNetlist:
    @pytest.mark.parametrize("chip_id", list(CHIPS))
    def test_topology_matches_chip(self, chip_id):
        from repro.circuits.matching import identify_topology

        circuit = netlist_for(chip_id)
        match = identify_topology(circuit)
        assert match.topology is CHIPS[chip_id].topology
        assert match.exact

    def test_dimensions_flow_into_devices(self):
        circuit = netlist_for("A5")
        n1 = circuit.device("n1")
        assert n1.params["w"] == chip("A5").transistor(TransistorKind.NSA).w

    def test_netlists_simulate(self):
        """A HiFi netlist drops straight into the analog bench."""
        from repro.analog import SenseAmpBench, SenseAmpConfig

        for chip_id in ("C4", "B5"):
            c = CHIPS[chip_id]
            bench = SenseAmpBench(
                SenseAmpConfig(topology=c.topology, sizes=sa_sizes_for(chip_id))
            )
            out = bench.run(data=1)
            assert out.correct, chip_id


class TestAnalogModel:
    def test_self_inaccuracy_zero(self):
        """Unlike CROW/REM, the HiFi model of a chip matches it exactly."""
        model = analog_model_for("C4")
        for kind in chip("C4").transistors:
            cmp = element_inaccuracy(model, chip("C4"), kind)
            assert cmp.wl_error == pytest.approx(0.0, abs=1e-12)

    def test_ocsa_flag(self):
        assert analog_model_for("B5").includes_ocsa
        assert not analog_model_for("C5").includes_ocsa

    def test_a_ddr5_model_finally_exists(self):
        """§VI-A: 'no DDR5 model exists' — now one does per DDR5 chip."""
        model = analog_model_for("A5")
        assert model.technology == "DDR5"
        assert model.has(TransistorKind.NSA)


class TestRegionSpec:
    def test_spec_round_trips_through_re(self):
        from repro.layout import generate_sa_region
        from repro.reveng import reverse_engineer_cell

        with pytest.warns(DeprecationWarning):
            spec = region_spec_for("B5", n_pairs=2)
        cell = generate_sa_region(spec)
        result = reverse_engineer_cell(cell)
        assert result.topology is SaTopology.OCSA
        assert result.all_exact

    def test_feature_size_carried(self):
        with pytest.warns(DeprecationWarning):
            spec = region_spec_for("B4")
        assert spec.feature_nm == chip("B4").geometry.feature_nm


class TestSpiceCard:
    def test_classic_card(self):
        card = spice_card("C4")
        assert ".SUBCKT SA_C4" in card
        assert "PEQ" in card and "ISO" not in card
        assert card.count("\nM") == 9

    def test_ocsa_card(self):
        card = spice_card("A4")
        assert "ISO" in card and "OC" in card
        assert card.count("\nM") == 12

    def test_dimensions_in_nanometres(self):
        card = spice_card("C4")
        nsa = chip("C4").transistor(TransistorKind.NSA)
        assert f"W={nsa.w:.0f}n" in card


class TestDeprecatedRegionSpec:
    def test_shim_warns_and_matches_catalog(self):
        from repro.catalog import build_region_spec, chip_variant

        with pytest.warns(DeprecationWarning, match="region_spec_for"):
            legacy = region_spec_for("B5", n_pairs=2)
        assert legacy == build_region_spec(chip_variant("B5", word_size=2))

    def test_shim_output_unchanged_for_all_chips(self):
        from repro.catalog import build_region_spec, chip_variant

        for chip_id in CHIPS:
            with pytest.warns(DeprecationWarning):
                legacy = region_spec_for(chip_id)
            assert legacy == build_region_spec(chip_variant(chip_id))
