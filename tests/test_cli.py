"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCommands:
    def test_summary(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "Studied chips" in out
        assert "Research audit" in out
        assert "CoolDRAM" in out

    def test_default_is_summary(self, capsys):
        assert main([]) == 0
        assert "Studied chips" in capsys.readouterr().out

    def test_chips(self, capsys):
        assert main(["chips"]) == 0
        out = capsys.readouterr().out
        assert "B5" in out and "ocsa" in out

    def test_audit(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "I1,I2,I3,I5" in out  # CoolDRAM's row

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "CROW" in out and "REM" in out

    def test_spice(self, capsys):
        assert main(["spice", "b5"]) == 0
        out = capsys.readouterr().out
        assert ".SUBCKT SA_B5" in out

    def test_spice_missing_arg(self, capsys):
        assert main(["spice"]) == 2

    def test_unknown_command(self, capsys):
        assert main(["bogus"]) == 2

    def test_bundle(self, capsys, tmp_path):
        assert main(["bundle", str(tmp_path / "b")]) == 0
        out = capsys.readouterr().out
        assert "bundle written: 6 chips" in out
        assert (tmp_path / "b" / "MANIFEST.json").exists()

    def test_bundle_missing_arg(self):
        assert main(["bundle"]) == 2


class TestCampaignCommand:
    def test_help(self, capsys):
        assert main(["campaign", "--help"]) == 0
        assert "--workers" in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert main(["campaign", "Z9"]) == 2
        assert "unknown campaign target" in capsys.readouterr().err

    def test_unknown_option(self, capsys):
        assert main(["campaign", "--bogus"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_option_missing_value(self, capsys):
        assert main(["campaign", "classic", "--workers"]) == 2
        assert "requires a value" in capsys.readouterr().err

    def test_option_non_integer_value(self, capsys):
        assert main(["campaign", "classic", "--workers", "abc"]) == 2
        assert "requires an integer" in capsys.readouterr().err

    def test_single_chip_campaign(self, capsys, tmp_path):
        """A real (fast-preset) campaign through the CLI, cold then warm."""
        cache = str(tmp_path / "cache")
        args = ["campaign", "classic", "--pairs", "1", "--fast",
                "--workers", "1", "--cache", cache]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "classic: topology=classic" in out
        assert "run" in out  # cold: stages executed

        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert "classic: topology=classic" in warm_out
        assert "skip" in warm_out  # warm: upstream stages skipped via cache
