"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCommands:
    def test_summary(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "Studied chips" in out
        assert "Research audit" in out
        assert "CoolDRAM" in out

    def test_default_is_summary(self, capsys):
        assert main([]) == 0
        assert "Studied chips" in capsys.readouterr().out

    def test_chips(self, capsys):
        assert main(["chips"]) == 0
        out = capsys.readouterr().out
        assert "B5" in out and "ocsa" in out

    def test_audit(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "I1,I2,I3,I5" in out  # CoolDRAM's row

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "CROW" in out and "REM" in out

    def test_spice(self, capsys):
        assert main(["spice", "b5"]) == 0
        out = capsys.readouterr().out
        assert ".SUBCKT SA_B5" in out

    def test_spice_missing_arg(self, capsys):
        assert main(["spice"]) == 2

    def test_unknown_command(self, capsys):
        assert main(["bogus"]) == 2

    def test_bundle(self, capsys, tmp_path):
        assert main(["bundle", str(tmp_path / "b")]) == 0
        out = capsys.readouterr().out
        assert "bundle written: 6 chips" in out
        assert (tmp_path / "b" / "MANIFEST.json").exists()

    def test_bundle_missing_arg(self):
        assert main(["bundle"]) == 2


class TestCampaignCommand:
    def test_help(self, capsys):
        assert main(["campaign", "--help"]) == 0
        assert "--workers" in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert main(["campaign", "Z9"]) == 2
        assert "unknown campaign target" in capsys.readouterr().err

    def test_unknown_option(self, capsys):
        assert main(["campaign", "--bogus"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_option_missing_value(self, capsys):
        assert main(["campaign", "classic", "--workers"]) == 2
        assert "requires a value" in capsys.readouterr().err

    def test_option_non_integer_value(self, capsys):
        assert main(["campaign", "classic", "--workers", "abc"]) == 2
        assert "requires an integer" in capsys.readouterr().err

    def test_single_chip_campaign(self, capsys, tmp_path):
        """A real (fast-preset) campaign through the CLI, cold then warm."""
        cache = str(tmp_path / "cache")
        args = ["campaign", "classic", "--pairs", "1", "--fast",
                "--workers", "1", "--cache", cache]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "classic: topology=classic" in out
        assert "run" in out  # cold: stages executed

        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert "classic: topology=classic" in warm_out
        assert "skip" in warm_out  # warm: upstream stages skipped via cache


class TestCampaignShardFlags:
    def test_help_lists_shard_flags(self, capsys):
        assert main(["campaign", "--help"]) == 0
        out = capsys.readouterr().out
        assert "--shard-slices" in out
        assert "--shard-batch" in out

    def test_shard_batch_zero_is_a_usage_error(self, capsys):
        assert main(["campaign", "classic", "--shard-batch", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_shard_batch_non_integer_is_a_usage_error(self, capsys):
        assert main(["campaign", "classic", "--shard-batch", "abc"]) == 2
        assert "requires an integer" in capsys.readouterr().err

    def test_shard_batch_missing_value(self, capsys):
        assert main(["campaign", "classic", "--shard-batch"]) == 2
        assert "requires a value" in capsys.readouterr().err

    def test_sharded_campaign_smoke(self, capsys):
        """--shard-slices runs end to end (sharding degrades to serial
        when only one worker is available — same results either way)."""
        args = ["campaign", "classic", "--pairs", "1", "--fast",
                "--workers", "1", "--shard-slices"]
        assert main(args) == 0
        assert "classic: topology=classic" in capsys.readouterr().out

    def test_shard_batch_implies_shard_slices(self, capsys):
        args = ["campaign", "classic", "--pairs", "1", "--fast",
                "--workers", "1", "--shard-batch", "4"]
        assert main(args) == 0
        assert "classic: topology=classic" in capsys.readouterr().out


class TestCampaignFaultFlags:
    def test_help_lists_resilience_flags(self, capsys):
        assert main(["campaign", "--help"]) == 0
        out = capsys.readouterr().out
        for flag in ("--fault-plan", "--max-retries", "--chip-timeout", "--json"):
            assert flag in out

    def test_bad_fault_spec_is_a_usage_error(self, capsys):
        assert main(["campaign", "classic", "--fault-plan", "gremlins=1"]) == 2
        assert "unknown fault spec key" in capsys.readouterr().err

    def test_bad_retry_count_is_a_usage_error(self, capsys):
        assert main(["campaign", "classic", "--max-retries", "two"]) == 2
        assert "requires an integer" in capsys.readouterr().err

    def test_faulty_campaign_writes_versioned_report(self, capsys, tmp_path):
        """Heavy faults on the only chip: quarantine, exit 1, JSON report."""
        import json

        path = tmp_path / "report.json"
        code = main([
            "campaign", "classic", "--pairs", "1", "--fast", "--workers", "1",
            "--fault-plan", "seed=3,drop=0.3,drift=0.2", "--max-retries", "1",
            "--json", str(path),
        ])
        captured = capsys.readouterr()
        assert code == 1  # every chip quarantined → partial report is empty
        assert "QUARANTINED at acquire after 1 retries" in captured.out
        data = json.loads(path.read_text())
        assert data["schema_version"] == "campaign-report/3"
        assert "classic" in data["quarantined"]
        assert data["quarantined"]["classic"]["error_type"] == "AcquisitionError"
        # The captured worker traceback survives into the JSON artefact.
        assert "Traceback (most recent call last)" in (
            data["quarantined"]["classic"]["traceback"]
        )

    def test_json_to_stdout_round_trips(self, capsys, tmp_path):
        from repro.runtime import CampaignReport

        code = main([
            "campaign", "classic", "--pairs", "1", "--fast", "--workers", "1",
            "--fault-plan", "seed=0",  # inert plan: clean run, flags exercised
            "--json", "-",
        ])
        assert code == 0
        out = capsys.readouterr().out
        start = out.index('{\n  "')  # the report is the only JSON object
        report = CampaignReport.from_json(out[start:])
        assert list(report.chips) == ["classic"]
        assert not report.degraded


class TestCampaignObsFlags:
    def test_help_lists_obs_flags(self, capsys):
        assert main(["campaign", "--help"]) == 0
        out = capsys.readouterr().out
        for flag in ("--chips", "--trace", "--trace-summary", "--metrics",
                     "--log-level", "--events", "--serve-obs",
                     "--serve-linger"):
            assert flag in out

    def test_chips_zero_is_a_usage_error(self, capsys):
        assert main(["campaign", "--chips", "0"]) == 2
        assert "--chips" in capsys.readouterr().err

    def test_chips_with_explicit_targets_is_a_usage_error(self, capsys):
        assert main(["campaign", "--chips", "2", "classic"]) == 2
        assert "--chips" in capsys.readouterr().err

    def test_bad_log_level_is_a_usage_error(self, capsys):
        assert main(["campaign", "classic", "--log-level", "CHATTY"]) == 2
        assert "log level" in capsys.readouterr().err.lower()

    def test_traced_campaign_writes_artefacts(self, capsys, tmp_path):
        """One --chips campaign with every obs flag on: trace + metrics land."""
        import json

        from repro.obs import reset_logging

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        events_path = tmp_path / "events.jsonl"
        try:
            code = main([
                "campaign", "--chips", "1", "--pairs", "1", "--fast",
                "--workers", "1",
                "--trace", str(trace_path), "--metrics", str(metrics_path),
                "--events", str(events_path),
                "--trace-summary", "--log-level", "WARNING",
            ])
        finally:
            reset_logging()
        assert code == 0
        out = capsys.readouterr().out
        assert "chip classic" in out  # the summary tree names the chip span
        assert f"trace written: {trace_path}" in out
        assert f"metrics written: {metrics_path}" in out
        assert f"events written: {events_path}" in out

        doc = json.loads(trace_path.read_text())
        names = {event["name"] for event in doc["traceEvents"]}
        assert "campaign" in names and "chip classic" in names
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["repro_chips_total{outcome=completed}"] == 1
        kinds = [json.loads(line)["kind"]
                 for line in events_path.read_text().splitlines()]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_finish"
        assert "stage_finish" in kinds


class TestCharacterizeCommand:
    def test_help(self, capsys):
        assert main(["characterize", "--help"]) == 0
        out = capsys.readouterr().out
        assert "--corners" in out and "--trials" in out
        for flag in ("--trace", "--metrics", "--events", "--serve-obs"):
            assert flag in out

    def test_unknown_option(self, capsys):
        assert main(["characterize", "--bogus"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_option_missing_value(self, capsys):
        assert main(["characterize", "--trials"]) == 2
        assert "requires a value" in capsys.readouterr().err

    def test_non_integer_trials(self, capsys):
        assert main(["characterize", "--trials", "lots"]) == 2
        assert "requires an integer" in capsys.readouterr().err

    def test_non_numeric_caps(self, capsys):
        assert main(["characterize", "--caps", "90,huge"]) == 2
        assert "comma-separated numbers" in capsys.readouterr().err

    def test_unknown_corner_fails_cleanly(self, capsys):
        assert main(["characterize", "--corners", "XX"]) == 1
        assert "characterization failed" in capsys.readouterr().err

    def test_sweep_writes_versioned_report(self, capsys, tmp_path):
        """A real one-cell sweep through the CLI, JSON report included."""
        import json

        report_path = tmp_path / "char.json"
        code = main([
            "characterize", "--topologies", "classic", "--corners", "TT",
            "--trials", "2", "--workers", "1", "--json", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "classic-TT" in out
        assert f"report written: {report_path}" in out
        data = json.loads(report_path.read_text())
        assert data["schema_version"] == "characterization-report/1"
        assert "classic-TT" in data["cells"]


class TestCatalogCommand:
    def test_help(self, capsys):
        assert main(["catalog", "--help"]) == 0
        out = capsys.readouterr().out
        assert "--variants" in out and "--builders" in out
        for flag in ("--trace", "--metrics", "--events", "--serve-obs"):
            assert flag in out

    def test_unknown_option(self, capsys):
        assert main(["catalog", "--bogus"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_option_missing_value(self, capsys):
        assert main(["catalog", "--variants"]) == 2
        assert "requires a value" in capsys.readouterr().err

    def test_bad_word_sizes(self, capsys):
        assert main(["catalog", "--word-sizes", "two"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err

    def test_bad_axis_value(self, capsys):
        assert main(["catalog", "--vendors", "fab-z"]) == 2
        assert "unknown vendor profile" in capsys.readouterr().err

    def test_zero_variants(self, capsys):
        assert main(["catalog", "--variants", "0"]) == 2
        assert "at least 1" in capsys.readouterr().err

    def test_tiny_catalog_run(self, capsys, tmp_path):
        """A real sampled population through the CLI, with JSON report."""
        import json

        cache = str(tmp_path / "cache")
        report_path = tmp_path / "catalog-report.json"
        args = ["catalog", "--variants", "2", "--seed", "0",
                "--word-sizes", "1", "--workers", "2",
                "--cache", cache, "--json", str(report_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "results digest:" in out
        data = json.loads(report_path.read_text())
        assert data["schema_version"] == "catalog-report/1"
        assert len(data["results"]["variants"]) == 2
        assert data["results"]["digest"]

        # Warm rerun against the same cache reuses every stage.
        assert main(args) == 0
        warm = json.loads(report_path.read_text())
        assert warm["cache_misses"] == 0
        assert warm["results"]["digest"] == data["results"]["digest"]


class TestObsCommand:
    """``python -m repro obs`` — trace analytics and artifact re-serving."""

    @pytest.fixture(scope="class")
    def artefacts(self, tmp_path_factory):
        """Trace/metrics/events from one real 1-chip campaign run."""
        from repro.obs import reset_logging

        root = tmp_path_factory.mktemp("obs-artefacts")
        paths = {
            "trace": root / "trace.jsonl",
            "metrics": root / "metrics.json",
            "events": root / "events.jsonl",
        }
        try:
            code = main([
                "campaign", "--chips", "1", "--pairs", "1", "--fast",
                "--workers", "1",
                "--trace", str(paths["trace"]),
                "--metrics", str(paths["metrics"]),
                "--events", str(paths["events"]),
            ])
        finally:
            reset_logging()
        assert code == 0
        return paths

    def test_help(self, capsys):
        assert main(["obs", "--help"]) == 0
        out = capsys.readouterr().out
        assert "obs serve" in out and "obs analyze" in out and "--diff" in out

    def test_no_subcommand_is_usage_error(self, capsys):
        assert main(["obs"]) == 2
        assert "obs serve" in capsys.readouterr().err

    def test_unknown_subcommand(self, capsys):
        assert main(["obs", "scrape"]) == 2
        assert "unknown obs subcommand" in capsys.readouterr().err

    def test_analyze_requires_one_trace(self, capsys):
        assert main(["obs", "analyze"]) == 2
        assert "one trace" in capsys.readouterr().err
        assert main(["obs", "analyze", "a.jsonl", "b.jsonl"]) == 2

    def test_analyze_diff_requires_two(self, capsys):
        assert main(["obs", "analyze", "--diff", "a.jsonl"]) == 2
        assert "two with --diff" in capsys.readouterr().err

    def test_analyze_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["obs", "analyze", str(tmp_path / "absent.jsonl")]) == 1
        assert "obs analyze failed" in capsys.readouterr().err

    def test_analyze_renders_real_trace(self, artefacts, capsys):
        assert main(["obs", "analyze", str(artefacts["trace"])]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "campaign" in out
        assert "per-stage attribution" in out
        assert "cache" in out

    def test_analyze_diff_of_trace_with_itself(self, artefacts, capsys):
        trace = str(artefacts["trace"])
        assert main(["obs", "analyze", "--diff", trace, trace]) == 0
        out = capsys.readouterr().out
        assert "(total)" in out

    def test_serve_requires_an_artifact(self, capsys):
        assert main(["obs", "serve"]) == 2
        assert "at least one of" in capsys.readouterr().err

    def test_serve_missing_file_fails_cleanly(self, capsys, tmp_path):
        code = main(["obs", "serve", "--metrics", str(tmp_path / "no.json"),
                     "--port", "0", "--linger", "0"])
        assert code == 1
        assert "obs serve failed" in capsys.readouterr().err

    def test_serve_all_artifacts_and_exit(self, artefacts, capsys):
        code = main([
            "obs", "serve",
            "--metrics", str(artefacts["metrics"]),
            "--trace", str(artefacts["trace"]),
            "--events", str(artefacts["events"]),
            "--port", "0", "--linger", "0",
        ])
        assert code == 0
        assert "serving saved telemetry" in capsys.readouterr().err


class TestWithObsServerFailure:
    def test_body_failure_flips_healthz_to_failed(self):
        """A crashing body must not skip the healthz flip: scrapers
        polling during the linger window see an explicit "failed" state
        (and a closed event bus), then the exception propagates."""
        import json
        import re
        import threading
        import time
        import urllib.request

        from repro.__main__ import _with_obs_server
        from repro.obs import ObsConfig

        url_holder: dict[str, str] = {}
        seen: dict[str, object] = {}

        def body():
            raise RuntimeError("campaign exploded")

        def run(capture):
            try:
                _with_obs_server(0, 5.0, ObsConfig(events=True), body)
            except RuntimeError as exc:
                capture["raised"] = str(exc)

        # the ephemeral URL is only announced on stderr
        import io
        import sys

        stderr, sys.stderr = sys.stderr, io.StringIO()
        try:
            thread = threading.Thread(target=run, args=(seen,), daemon=True)
            thread.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and "url" not in url_holder:
                match = re.search(r"http://[\d.]+:\d+",
                                  sys.stderr.getvalue())
                if match:
                    url_holder["url"] = match.group(0)
                    break
                time.sleep(0.02)
        finally:
            sys.stderr = stderr
        assert "url" in url_holder, "obs server never announced its URL"

        deadline = time.monotonic() + 10
        state = None
        while time.monotonic() < deadline:
            with urllib.request.urlopen(url_holder["url"] + "/healthz",
                                        timeout=5) as resp:
                state = json.loads(resp.read())["state"]
            if state == "failed":
                break
            time.sleep(0.05)
        assert state == "failed"
        thread.join(timeout=15)
        assert seen.get("raised") == "campaign exploded"
