"""The observability layer: spans, metrics, logs, and their campaign wiring.

Unit-level coverage of ``repro.obs`` plus the two contracts the campaign
runtime stakes on it: observability-off is bit-identical to
observability-on (results *and* cache keys), and a traced parallel
campaign produces one well-formed Chrome trace whose stage spans match
the per-chip :class:`StageMetrics` one-to-one.
"""

import io
import json
import logging
import pickle
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import CampaignError
from repro.faults import FaultPlan
from repro.imaging import FibSemCampaign, SemParameters
from repro.layout import SaRegionSpec
from repro.obs import (
    DEFAULT_BUCKETS,
    JsonFormatter,
    MetricsRegistry,
    NoopMetrics,
    NoopTracer,
    ObsConfig,
    Tracer,
    bind,
    configure_logging,
    current_metrics,
    current_tracer,
    empty_snapshot,
    from_jsonl,
    kernel_scope,
    merge_snapshots,
    merge_spans,
    metric_key,
    render_trace_summary,
    reset_logging,
    span_tree,
    to_chrome_trace,
    to_jsonl,
    use_metrics,
    use_tracer,
)
from repro.pipeline import PipelineConfig
from repro.runtime import CampaignReport, ChipJob, ResiliencePolicy, run_campaign

FAST = PipelineConfig(denoise_iterations=10, align_search_px=2, align_baselines=(1, 2))

STAGE_ORDER = ["layout", "voxelize", "acquire", "denoise", "align", "assemble", "reveng"]


def _job(name: str, topo: str, fault_plan: FaultPlan | None = None) -> ChipJob:
    """A short-stack chip job (cheap enough to run many times)."""
    return ChipJob(
        name=name,
        spec=SaRegionSpec(name=name.replace("-", "_"), topology=topo, n_pairs=1),
        campaign=FibSemCampaign(sem=SemParameters(dwell_time_us=6.0)),
        y_stop_nm=300.0,
        fault_plan=fault_plan,
    )


# ---------------------------------------------------------------------------
# Tracer


class TestTracer:
    def test_nesting_follows_call_structure(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with current_tracer().span("outer", kind="chip"):
                with current_tracer().span("inner", kind="stage"):
                    pass
        inner, outer = tracer.finished_spans()  # completion order
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.start_s >= outer.start_s
        assert inner.duration_s <= outer.duration_s

    def test_attrs_now_and_later(self):
        tracer = Tracer()
        with tracer.span("s", kind="stage", early=1) as span:
            span.set(late=2)
        (recorded,) = tracer.finished_spans()
        assert recorded.attrs == {"early": 1, "late": 2}

    def test_exception_marks_error_status(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", kind="stage"):
                raise ValueError("nope")
        (span,) = tracer.finished_spans()
        assert span.status == "error"
        assert span.attrs["error_type"] == "ValueError"

    def test_disabled_tracer_is_shared_noop(self):
        tracer = current_tracer()  # nothing activated by default
        assert isinstance(tracer, NoopTracer)
        assert not tracer.enabled
        # The null span is one shared object: nothing allocated per call.
        assert tracer.span("a", kind="stage") is tracer.span("b", kind="kernel")

    def test_span_ids_unique_across_fresh_tracers(self):
        ids = set()
        for _ in range(3):
            tracer = Tracer()
            with tracer.span("s"):
                pass
            ids.add(tracer.finished_spans()[0].span_id)
        assert len(ids) == 3

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        with tracer.span("a", kind="chip", chip="x"):
            with tracer.span("b", kind="stage"):
                pass
        spans = tracer.finished_spans()
        restored = from_jsonl(to_jsonl(spans))
        assert [s.to_dict() for s in restored] == [s.to_dict() for s in spans]

    def test_merge_spans_reparents_orphans(self):
        campaign = Tracer()
        with campaign.span("campaign", kind="campaign"):
            pass
        root = campaign.finished_spans()[0]
        worker = Tracer()
        with worker.span("chip w", kind="chip"):
            with worker.span("stage s", kind="stage"):
                pass
        merged = merge_spans(root, worker.finished_spans())
        tree = span_tree(merged)
        assert [s.name for s in tree[None]] == ["campaign"]
        assert [s.name for s in tree[root.span_id]] == ["chip w"]
        chip = tree[root.span_id][0]
        assert [s.name for s in tree[chip.span_id]] == ["stage s"]

    def test_chrome_trace_shape(self):
        tracer = Tracer()
        with tracer.span("a", kind="stage", n=3):
            pass
        doc = to_chrome_trace(tracer.finished_spans())
        assert doc["displayTimeUnit"] == "ms"
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["cat"] == "stage"
        assert event["dur"] > 0
        assert event["args"]["n"] == 3
        assert event["args"]["status"] == "ok"
        json.dumps(doc)  # serialisable as-is

    def test_render_summary_tree(self):
        tracer = Tracer()
        with tracer.span("outer", kind="chip"):
            with tracer.span("inner", kind="stage"):
                pass
        text = render_trace_summary(tracer.finished_spans())
        outer_line, = [l for l in text.splitlines() if "outer" in l]
        inner_line, = [l for l in text.splitlines() if "inner" in l]
        assert "[chip]" in outer_line and "[stage]" in inner_line
        assert inner_line.startswith("  ")  # indented under its parent
        assert "%" in inner_line  # share of parent
        assert render_trace_summary([]) == "(empty trace)"

    def test_summary_depth_cap(self):
        tracer = Tracer()
        with tracer.span("d0"):
            with tracer.span("d1"):
                with tracer.span("d2"):
                    pass
        text = render_trace_summary(tracer.finished_spans(), max_depth=2)
        assert "d1" in text and "d2" not in text


# ---------------------------------------------------------------------------
# Metrics


class TestMetrics:
    def test_metric_key_sorts_labels(self):
        assert metric_key("m", {}) == "m"
        assert metric_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"

    def test_counter_gauge_histogram_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("hits", stage="align").inc()
        reg.counter("hits", stage="align").inc(2)
        reg.gauge("workers").set(4)
        reg.gauge("workers").set(2)
        reg.histogram("lat").observe(0.003)
        reg.histogram("lat").observe(999.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits{stage=align}": 3.0}
        assert snap["gauges"] == {"workers": 2.0}
        hist = snap["histograms"]["lat"]
        assert hist["bounds"] == list(DEFAULT_BUCKETS)
        assert sum(hist["counts"]) == 2
        assert hist["counts"][-1] == 1  # the +inf bucket caught 999
        assert hist["count"] == 2

    def test_merge_snapshots(self):
        a = MetricsRegistry()
        a.counter("c").inc(1)
        a.gauge("g").set(1)
        a.histogram("h").observe(0.002)
        b = MetricsRegistry()
        b.counter("c").inc(2)
        b.counter("only_b").inc()
        b.gauge("g").set(5)
        b.histogram("h").observe(0.002)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"]["c"] == 3.0
        assert merged["counters"]["only_b"] == 1.0
        assert merged["gauges"]["g"] == 5.0  # last write wins
        assert merged["histograms"]["h"]["count"] == 2
        assert merge_snapshots(empty_snapshot(), merged) == merged

    def test_merge_snapshots_histograms_across_workers(self):
        # N workers each observe into the same-named histogram; folding
        # their snapshots must add per-bucket counts elementwise.
        workers = 4
        base = empty_snapshot()
        for w in range(workers):
            reg = MetricsRegistry()
            hist = reg.histogram("repro_stage_seconds", bounds=(0.1, 1.0),
                                 stage="align")
            hist.observe(0.05)       # bucket 0
            hist.observe(0.5 + w)    # bucket 1 for w=0, +inf otherwise
            merge_snapshots(base, reg.snapshot())
        merged = base["histograms"]["repro_stage_seconds{stage=align}"]
        assert merged["bounds"] == [0.1, 1.0]
        assert merged["counts"] == [workers, 1, workers - 1]
        assert merged["count"] == 2 * workers
        assert merged["sum"] == pytest.approx(
            sum(0.05 + 0.5 + w for w in range(workers))
        )

    def test_merge_snapshots_bounds_mismatch_replaces(self):
        a = MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", bounds=(5.0,)).observe(0.5)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        # Incompatible bucket layouts can't add; the newer snapshot wins.
        assert merged["histograms"]["h"]["bounds"] == [5.0]
        assert merged["histograms"]["h"]["count"] == 1

    def test_absorb_counters_add_gauges_overwrite(self):
        live = MetricsRegistry()
        live.counter("c", stage="x").inc(1)
        live.gauge("g").set(1)
        worker = MetricsRegistry()
        worker.counter("c", stage="x").inc(2)
        worker.counter("fresh").inc()
        worker.gauge("g").set(9)
        live.absorb(worker.snapshot())
        snap = live.snapshot()
        assert snap["counters"]["c{stage=x}"] == 3.0
        assert snap["counters"]["fresh"] == 1.0
        assert snap["gauges"]["g"] == 9.0

    def test_absorb_histograms_elementwise(self):
        live = MetricsRegistry()
        live.histogram("h", bounds=(0.1, 1.0)).observe(0.05)
        worker = MetricsRegistry()
        worker.histogram("h", bounds=(0.1, 1.0)).observe(0.5)
        worker.histogram("h", bounds=(0.1, 1.0)).observe(99.0)
        live.absorb(worker.snapshot())
        hist = live.snapshot()["histograms"]["h"]
        assert hist["counts"] == [1, 1, 1]
        assert hist["count"] == 3

    def test_absorb_bounds_mismatch_replaces(self):
        live = MetricsRegistry()
        live.histogram("h", bounds=(1.0,)).observe(0.5)
        worker = MetricsRegistry()
        worker.histogram("h", bounds=(2.0, 4.0)).observe(3.0)
        live.absorb(worker.snapshot())
        hist = live.snapshot()["histograms"]["h"]
        assert hist["bounds"] == [2.0, 4.0]
        assert hist["counts"] == [0, 1, 0]
        assert hist["count"] == 1

    def test_disabled_registry_is_noop(self):
        metrics = current_metrics()
        assert isinstance(metrics, NoopMetrics)
        assert not metrics.enabled
        # Shared no-op instruments: no state, no allocation to speak of.
        assert metrics.counter("a") is metrics.histogram("b")
        metrics.counter("a").inc()  # does not blow up, records nothing

    def test_use_metrics_restores_previous(self):
        reg = MetricsRegistry()
        with use_metrics(reg):
            assert current_metrics() is reg
            inner = MetricsRegistry()
            with use_metrics(inner):
                assert current_metrics() is inner
            assert current_metrics() is reg
        assert isinstance(current_metrics(), NoopMetrics)


# ---------------------------------------------------------------------------
# Logs


@pytest.fixture
def log_stream():
    stream = io.StringIO()
    configure_logging("DEBUG", stream=stream)
    yield stream
    reset_logging()


class TestLogs:
    def test_json_lines_with_bound_context(self, log_stream):
        logger = logging.getLogger("repro.test_obs")
        with bind(chip="fab-a", stage="align"):
            logger.warning("drift", extra={"fields": {"slice": 7}})
        record = json.loads(log_stream.getvalue().strip())
        assert record["msg"] == "drift"
        assert record["level"] == "WARNING"
        assert record["chip"] == "fab-a"
        assert record["stage"] == "align"
        assert record["slice"] == 7
        assert record["logger"] == "repro.test_obs"
        assert isinstance(record["ts"], float)

    def test_bind_nests_and_unwinds(self):
        from repro.obs import bound_context

        with bind(chip="a"):
            with bind(stage="s", chip="b"):
                assert bound_context() == {"chip": "b", "stage": "s"}
            assert bound_context() == {"chip": "a"}
        assert bound_context() == {}

    def test_configure_logging_idempotent(self, log_stream):
        repro_logger = logging.getLogger("repro")
        before = list(repro_logger.handlers)
        configure_logging("INFO")
        assert list(repro_logger.handlers) == before  # reused, not duplicated

    def test_exception_fields(self, log_stream):
        logger = logging.getLogger("repro.test_obs")
        try:
            raise RuntimeError("bad")
        except RuntimeError:
            logger.error("failed", exc_info=True)
        record = json.loads(log_stream.getvalue().strip())
        assert record["exc_type"] == "RuntimeError"
        assert "Traceback" in record["exc"]

    def test_formatter_standalone(self):
        record = logging.LogRecord(
            "repro.x", logging.INFO, __file__, 1, "hello", None, None
        )
        payload = json.loads(JsonFormatter().format(record))
        assert payload["msg"] == "hello" and payload["level"] == "INFO"


# ---------------------------------------------------------------------------
# kernel_scope


class TestKernelScope:
    def test_records_span_and_ns_per_px(self):
        tracer = Tracer()
        reg = MetricsRegistry()
        with use_tracer(tracer), use_metrics(reg):
            with kernel_scope("my_kernel", pixels=1000, method="x") as scope:
                scope.set(extra=1)
                time.sleep(0.001)
        (span,) = tracer.finished_spans()
        assert span.name == "my_kernel" and span.kind == "kernel"
        assert span.attrs["method"] == "x" and span.attrs["extra"] == 1
        snap = reg.snapshot()
        assert snap["counters"]["repro_kernel_pixels_total{kernel=my_kernel}"] == 1000
        hist = snap["histograms"]["repro_kernel_ns_per_px{kernel=my_kernel}"]
        assert hist["count"] == 1 and hist["sum"] > 0

    def test_set_pixels_late(self):
        reg = MetricsRegistry()
        with use_metrics(reg):
            with kernel_scope("k") as scope:
                scope.set_pixels(50)
        assert reg.snapshot()["counters"]["repro_kernel_pixels_total{kernel=k}"] == 50

    def test_disabled_is_silent(self):
        with kernel_scope("k", pixels=10) as scope:
            scope.set(a=1)  # all swallowed by the shared null span
        assert isinstance(current_tracer(), NoopTracer)


# ---------------------------------------------------------------------------
# Traced parallel campaign


@pytest.fixture(scope="module")
def obs_report():
    """A 2-chip, 2-worker campaign with full observability on."""
    jobs = [_job("obs-classic", "classic"), _job("obs-ocsa", "ocsa")]
    return run_campaign(
        jobs, config=FAST, workers=2, obs=ObsConfig(trace=True, metrics=True)
    )


class TestCampaignTrace:
    def test_chrome_trace_loads(self, obs_report, tmp_path):
        path = obs_report.save_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events, "empty trace"
        for event in events:
            assert event["ph"] == "X"
            assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(event)
            assert event["dur"] > 0

    def test_campaign_chip_stage_nesting(self, obs_report):
        tree = span_tree(obs_report.trace)
        (root,) = tree[None]
        assert root.kind == "campaign"
        chips = tree[root.span_id]
        assert sorted(s.name for s in chips) == ["chip obs-classic", "chip obs-ocsa"]
        assert all(s.kind == "chip" for s in chips)
        for chip in chips:
            stage_spans = [s for s in tree[chip.span_id] if s.kind == "stage"]
            assert [s.name for s in stage_spans] == STAGE_ORDER

    def test_stage_spans_match_stage_metrics(self, obs_report):
        tree = span_tree(obs_report.trace)
        (root,) = tree[None]
        for chip in tree[root.span_id]:
            name = chip.attrs["chip"]
            stage_spans = [s for s in tree[chip.span_id] if s.kind == "stage"]
            run = obs_report.chips[name]
            assert [s.name for s in stage_spans] == [m.stage for m in run.stages]
            for span, metric in zip(stage_spans, run.stages):
                assert span.attrs["disposition"] == metric.disposition

    def test_attempt_and_kernel_spans_present(self, obs_report):
        kinds = {s.kind for s in obs_report.trace}
        assert {"campaign", "chip", "attempt", "stage", "kernel"} <= kinds
        kernels = {s.name for s in obs_report.trace if s.kind == "kernel"}
        assert {"acquire_stack", "denoise_stack", "align_stack",
                "assemble_volume"} <= kernels

    def test_jsonl_export_round_trips(self, obs_report, tmp_path):
        path = obs_report.save_trace(tmp_path / "trace.jsonl")
        restored = from_jsonl(path.read_text())
        assert [s.to_dict() for s in restored] == \
            [s.to_dict() for s in obs_report.trace]

    def test_trace_summary_text(self, obs_report):
        text = obs_report.trace_summary()
        assert "campaign" in text
        assert "chip obs-classic" in text
        assert "denoise_stack" in text

    def test_metrics_merged_and_embedded(self, obs_report):
        counters = obs_report.metrics["counters"]
        assert counters["repro_chips_total{outcome=completed}"] == 2
        # Worker-side counters crossed the pool and were merged.
        assert counters["repro_cache_lookups_total{disposition=run,stage=align}"] == 2
        assert counters["repro_hash_bytes_total"] > 0
        hists = obs_report.metrics["histograms"]
        assert hists["repro_stage_seconds{stage=denoise}"]["count"] == 2
        assert hists["repro_kernel_ns_per_px{kernel=align_stack}"]["count"] == 2
        gauges = obs_report.metrics["gauges"]
        assert gauges["repro_campaign_workers"] == 2

    def test_metrics_survive_json_round_trip(self, obs_report):
        data = json.loads(obs_report.to_json())
        assert data["schema_version"] == "campaign-report/3"
        restored = CampaignReport.from_json(obs_report.to_json())
        assert restored.metrics == obs_report.metrics

    def test_save_metrics(self, obs_report, tmp_path):
        path = obs_report.save_metrics(tmp_path / "metrics.json")
        assert json.loads(path.read_text()) == obs_report.metrics

    def test_save_artefacts_create_parent_dirs(self, obs_report, tmp_path):
        trace = obs_report.save_trace(tmp_path / "a" / "b" / "trace.json")
        metrics = obs_report.save_metrics(tmp_path / "c" / "metrics.json")
        assert trace.exists() and metrics.exists()

    def test_rss_gauge_sampled(self, obs_report):
        # The campaign-wide RssSampler ran for the whole fixture campaign.
        gauges = obs_report.metrics["gauges"]
        assert gauges["repro_campaign_rss_bytes"] > 0
        assert gauges["repro_campaign_rss_peak_bytes"] >= \
            gauges["repro_campaign_rss_bytes"]

    def test_unobserved_report_refuses_obs_artefacts(self, tmp_path):
        report = CampaignReport(chips={}, workers=1, wall_seconds=0.0)
        with pytest.raises(CampaignError, match="without tracing"):
            report.save_trace(tmp_path / "t.json")
        with pytest.raises(CampaignError, match="without metrics"):
            report.save_metrics(tmp_path / "m.json")


# ---------------------------------------------------------------------------
# Observability must not change results


class TestBitIdentity:
    @settings(
        max_examples=2,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        topo=st.sampled_from(["classic", "ocsa"]),
    )
    def test_obs_on_off_bit_identical(self, tmp_path_factory, seed, topo):
        """Same chip, obs off vs fully on: identical result, identical keys."""
        plan = FaultPlan(seed=seed)  # inert (all rates zero) but hashed
        cache_off = tmp_path_factory.mktemp("cache-off")
        cache_on = tmp_path_factory.mktemp("cache-on")
        off = run_campaign(
            [_job("bit", topo, plan)], config=FAST, workers=1, cache_dir=cache_off
        )
        on = run_campaign(
            [_job("bit", topo, plan)], config=FAST, workers=1, cache_dir=cache_on,
            obs=ObsConfig(trace=True, metrics=True, log_level="DEBUG"),
        )
        reset_logging()
        assert pickle.dumps(off.result("bit")) == (
            pickle.dumps(on.result("bit"))
        )
        keys_off = sorted(p.name for p in cache_off.rglob("*.pkl"))
        keys_on = sorted(p.name for p in cache_on.rglob("*.pkl"))
        assert keys_off and keys_off == keys_on

    def test_parallel_campaign_with_live_exporter_bit_identical(self, tmp_path):
        """workers=2 with the event bus AND a live scraping ObsServer
        attached must produce results and cache keys identical to a bare
        run — the full --serve-obs stack only observes."""
        from repro.obs import ObsSession
        from repro.obs.export import ObsServer

        jobs = [_job("live-classic", "classic"), _job("live-ocsa", "ocsa")]
        cache_off = tmp_path / "off"
        cache_on = tmp_path / "on"
        off = run_campaign(jobs, config=FAST, workers=2,
                           cache_dir=str(cache_off))
        obs = ObsConfig(trace=True, metrics=True, events=True)
        with ObsSession(obs) as session:
            with ObsServer(port=0, metrics_fn=session.metrics_snapshot,
                           spans_fn=session.spans, bus=session.bus) as server:
                on = run_campaign(jobs, config=FAST, workers=2,
                                  cache_dir=str(cache_on), obs=obs)
                # The ambient session bus was reused: progress streamed live.
                assert session.bus.last_seq > 0
                kinds = [e.kind for e in session.bus.snapshot()]
                assert kinds.count("chip_finish") == 2
                # And a scrape mid-lifetime renders cleanly.
                assert "repro_chips_total" in server.render_metrics()
        for name in ("live-classic", "live-ocsa"):
            assert pickle.dumps(off.result(name)) == (
                pickle.dumps(on.result(name))
            )
        keys_off = sorted(p.name for p in cache_off.rglob("*.pkl"))
        keys_on = sorted(p.name for p in cache_on.rglob("*.pkl"))
        assert keys_off and keys_off == keys_on


# ---------------------------------------------------------------------------
# Quarantine tracebacks (satellite)


class TestQuarantineTraceback:
    @pytest.fixture(scope="class")
    def quarantined(self):
        poison = FaultPlan(seed=3, drop_rate=0.6, drift_spike_rate=0.3)
        return run_campaign(
            [_job("poisoned", "classic", poison)], config=FAST, workers=1,
            policy=ResiliencePolicy(max_retries=0),
        )

    def test_traceback_captured(self, quarantined):
        record = quarantined.quarantined["poisoned"]
        assert record.error_type == "AcquisitionError"
        assert "Traceback (most recent call last)" in record.traceback
        assert "AcquisitionError" in record.traceback

    def test_traceback_in_json_report(self, quarantined):
        data = json.loads(quarantined.to_json())
        tb = data["quarantined"]["poisoned"]["traceback"]
        assert "AcquisitionError" in tb
        restored = CampaignReport.from_json(quarantined.to_json())
        assert restored.quarantined["poisoned"].traceback == tb


# ---------------------------------------------------------------------------
# Deadline telemetry (satellite)


class TestDeadlineTelemetry:
    def test_stage_notes_record_deadline_remaining(self):
        report = run_campaign(
            [_job("deadline", "classic")], config=FAST, workers=1,
            policy=ResiliencePolicy(chip_timeout_s=3600.0),
        )
        remaining = [
            m.notes["deadline_remaining_s"]
            for m in report.chips["deadline"].stages
        ]
        assert len(remaining) == len(STAGE_ORDER)
        assert all(0 < r < 3600.0 for r in remaining)
        # Later stages have less budget left.
        assert remaining == sorted(remaining, reverse=True)

    def test_no_deadline_no_note(self, obs_report):
        for run in obs_report.chips.values():
            for metric in run.stages:
                assert "deadline_remaining_s" not in metric.notes

    def test_warns_when_stage_eats_most_of_budget(self, caplog):
        from repro.runtime.cache import StageCache
        from repro.runtime.engine import _StageDef, execute_chain

        def slow(ctx):
            time.sleep(0.05)
            return {"cell": None}, {}

        stages = [_StageDef("layout", {}, slow)]
        with caplog.at_level(logging.WARNING, logger="repro.runtime.engine"):
            execute_chain(
                stages, StageCache(None),
                deadline=time.monotonic() + 60.0, chip_id="warn",
                budget_s=0.06,
            )
        assert any(
            "80%" in record.getMessage() for record in caplog.records
        ), caplog.records
