"""Property-based fuzzing of the bank state machine.

Random (mostly illegal) command traces must never crash the bank, and a
set of invariants must hold regardless of timing violations.
"""

from hypothesis import given, settings, strategies as st

from repro.circuits.topologies import SaTopology
from repro.dram.bank import Bank, CellState
from repro.dram.commands import Command, CommandTrace

ROWS = 32

command_strategy = st.one_of(
    st.tuples(st.just(Command.ACT), st.integers(min_value=0, max_value=ROWS - 1)),
    st.tuples(st.just(Command.PRE), st.none()),
    st.tuples(st.just(Command.RD), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just(Command.WR), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just(Command.NOP), st.none()),
)

trace_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
        command_strategy,
    ),
    min_size=1,
    max_size=25,
)


def _build_trace(raw) -> CommandTrace:
    trace = CommandTrace("fuzz")
    open_rowish = 0
    for time_ns, (command, arg) in sorted(raw, key=lambda item: item[0]):
        if command is Command.ACT:
            trace.at(time_ns, Command.ACT, row=arg)
            open_rowish = arg
        elif command in (Command.RD, Command.WR):
            trace.at(time_ns, command, row=open_rowish, col=arg)
        else:
            trace.at(time_ns, command)
    return trace


class TestBankFuzz:
    @given(trace_strategy, st.sampled_from([SaTopology.CLASSIC, SaTopology.OCSA]))
    @settings(max_examples=60, deadline=None)
    def test_never_crashes_and_invariants_hold(self, raw, topology):
        bank = Bank(topology=topology, rows=ROWS, enforce=False)
        trace = _build_trace(raw)
        result = bank.execute(trace)

        activated = {
            cmd.row for cmd in trace if cmd.command is Command.ACT
        }
        # Only activated rows can have a resolved cell state.
        assert set(result.row_states) <= activated
        # Every state is a known one.
        assert all(isinstance(s, CellState) for s in result.row_states.values())
        # Shared groups only contain activated rows, in groups of >= 2.
        for group in result.shared_rows:
            assert len(group) >= 2
            assert set(group) <= activated
        # Computed groups are a subset of shared groups' membership.
        for group in result.computed_rows:
            assert set(group) <= activated
        # Reads only reference activated rows.
        for _t, row, _valid in result.reads:
            assert row in activated

    @given(trace_strategy)
    @settings(max_examples=30, deadline=None)
    def test_clean_iff_no_violations(self, raw):
        bank = Bank(rows=ROWS)
        result = bank.execute(_build_trace(raw))
        assert result.clean == (len(result.violations) == 0)

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4),
        st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4),
        st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_majority_semantics(self, a, b, c):
        """MAJ over any bit patterns matches the boolean definition."""
        from repro.dram.compute import in_dram_majority

        bank = Bank(topology=SaTopology.CLASSIC, rows=ROWS)
        result = in_dram_majority(bank, (tuple(a), tuple(b), tuple(c)))
        assert result.succeeded
        expected = tuple(
            1 if (a[i] + b[i] + c[i]) >= 2 else 0 for i in range(4)
        )
        assert result.result_bits == expected
