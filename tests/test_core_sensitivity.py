"""Audit sensitivity analysis."""

import pytest

from repro.core.chips import chip
from repro.core.papers import Inaccuracy, paper
from repro.core.sensitivity import (
    _scaled_chip,
    conclusions_robust,
    sweep_effective_sizes,
)
from repro.errors import EvaluationError
from repro.layout.elements import TransistorKind


class TestScaledChip:
    def test_effective_sizes_scale(self):
        c4 = chip("C4")
        scaled = _scaled_chip(c4, 1.2)
        nsa = c4.transistor(TransistorKind.NSA)
        assert scaled.transistor(TransistorKind.NSA).eff_w == pytest.approx(nsa.eff_w * 1.2)
        # Drawn sizes untouched.
        assert scaled.transistor(TransistorKind.NSA).w == nsa.w

    def test_effective_never_below_drawn(self):
        scaled = _scaled_chip(chip("C4"), 0.1)
        for rec in scaled.transistors.values():
            assert rec.eff_w >= rec.w and rec.eff_l >= rec.l

    def test_bad_scale_rejected(self):
        with pytest.raises(EvaluationError):
            _scaled_chip(chip("C4"), 0.0)


class TestSweep:
    def test_every_paper_covered(self):
        results = sweep_effective_sizes()
        assert len(results) == 13

    def test_na_rows_have_no_range(self):
        results = {r.paper.key: r for r in sweep_effective_sizes()}
        assert results["ambit"].nominal is None
        assert results["ambit"].relative_span == 0.0

    def test_i1_papers_insensitive(self):
        """I1/I2 errors are area-driven: ±20 % effective sizes barely move
        them (the audit's big numbers are robust)."""
        results = {r.paper.key: r for r in sweep_effective_sizes()}
        for key in ("cooldram", "dracc", "simdram", "clr_dram"):
            assert paper(key).has(Inaccuracy.I1) or paper(key).has(Inaccuracy.I2)
            assert results[key].relative_span < 0.10, key

    def test_transistor_papers_sensitive(self):
        """Transistor-level papers move with the spacing margins."""
        results = {r.paper.key: r for r in sweep_effective_sizes()}
        assert results["nov_dram"].relative_span > results["cooldram"].relative_span

    def test_ranges_bracket_nominal(self):
        for r in sweep_effective_sizes():
            if r.nominal is None:
                continue
            assert r.low <= r.nominal <= r.high


class TestRobustness:
    def test_over_20x_conclusion_survives(self):
        assert conclusions_robust(threshold=20.0)
