"""§VI-A model inaccuracy analysis (Fig 11, Fig 12)."""

import pytest

from repro.core.chips import chip
from repro.core.model_accuracy import (
    all_reports,
    element_inaccuracy,
    fig11_series,
    model_accuracy_report,
    worst_case_factor,
)
from repro.core.models import CROW, REM
from repro.errors import EvaluationError
from repro.layout.elements import TransistorKind


class TestElementInaccuracy:
    def test_errors_are_relative(self):
        cmp = element_inaccuracy(CROW, chip("C4"), TransistorKind.PRECHARGE)
        m = CROW.transistor(TransistorKind.PRECHARGE)
        c = chip("C4").transistor(TransistorKind.PRECHARGE)
        assert cmp.width_error == pytest.approx(abs(m.w / c.w - 1))
        assert cmp.wl_error == pytest.approx(abs(m.wl_ratio / c.wl_ratio - 1))


class TestFig12Headlines:
    def test_crow_average_wl(self):
        """CROW has the higher inaccuracy between the two models (≈236 %)."""
        crow = model_accuracy_report(CROW, "DDR4")
        rem = model_accuracy_report(REM, "DDR4")
        assert crow.average("wl_error") > rem.average("wl_error")
        assert crow.average("wl_error") == pytest.approx(2.36, abs=0.35)

    def test_crow_precharge_is_worst_wl(self):
        """CROW's precharge has the highest W/L inaccuracy (≈562 % vs C4)."""
        crow = model_accuracy_report(CROW, "DDR4")
        value, who = crow.maximum("wl_error")
        assert who.kind is TransistorKind.PRECHARGE
        assert who.chip_id == "C4"
        assert value == pytest.approx(5.62, abs=0.3)

    def test_crow_width_max(self):
        """CROW widths: ≈938 % against C4's precharge transistors."""
        crow = model_accuracy_report(CROW, "DDR4")
        value, who = crow.maximum("width_error")
        assert who.kind is TransistorKind.PRECHARGE and who.chip_id == "C4"
        assert value == pytest.approx(9.38, abs=0.3)

    def test_rem_length_stats(self):
        """REM has the most inaccurate lengths (≈31 % avg, ≈101 % max
        against C4's equalizer)."""
        rem = model_accuracy_report(REM, "DDR4")
        assert rem.average("length_error") == pytest.approx(0.31, abs=0.08)
        value, who = rem.maximum("length_error")
        assert who.kind is TransistorKind.EQUALIZER and who.chip_id == "C4"
        assert value == pytest.approx(1.01, abs=0.1)

    def test_worst_case_factor_is_about_9x(self):
        """Abstract: 'public DRAM models are up to 9x inaccurate'."""
        assert worst_case_factor() == pytest.approx(9.4, abs=0.5)

    def test_ddr5_trend_similar(self):
        """'The models follow a similar trend when considering DDR5.'"""
        for model in (CROW, REM):
            d4 = model_accuracy_report(model, "DDR4").average("wl_error")
            d5 = model_accuracy_report(model, "DDR5").average("wl_error")
            assert d5 > 0.5 * d4

    def test_all_reports_cover_both_generations(self):
        reports = all_reports()
        assert len(reports) == 4
        assert {(r.model, r.generation) for r in reports} == {
            ("CROW", "DDR4"), ("CROW", "DDR5"), ("REM", "DDR4"), ("REM", "DDR5"),
        }


class TestFig11:
    def test_series_cover_chips_and_rem(self):
        series = fig11_series()
        assert set(series) == {"A4", "B4", "C4", "A5", "B5", "C5", "REM"}

    def test_each_entry_has_nsa_and_psa(self):
        for name, entry in fig11_series().items():
            assert set(entry) == {"nSA", "pSA"}

    def test_rem_has_no_spread(self):
        """REM is a single model value — no measurement whiskers."""
        entry = fig11_series()["REM"]
        assert entry["nSA"][1] == 0.0 and entry["nSA"][3] == 0.0

    def test_chips_have_spread(self):
        entry = fig11_series()["B5"]
        assert entry["nSA"][1] > 0.0

    def test_crow_omitted(self):
        """Fig 11: 'CROW values are omitted as severely out the range'."""
        assert "CROW" not in fig11_series()


class TestEdgeCases:
    def test_empty_report_raises(self):
        from repro.core.model_accuracy import ModelAccuracyReport

        empty = ModelAccuracyReport(model="X", generation="DDR4")
        with pytest.raises(EvaluationError):
            empty.average()
