"""Per-chip acquisition planning (§IV-B parameter choices)."""

import pytest

from repro.imaging.plan import all_plans, plan_for
from repro.imaging.sem import Detector, contrast_separation


class TestPlans:
    def test_detectors_follow_table1(self):
        plans = all_plans()
        assert plans["A4"].campaign.sem.detector is Detector.SE
        assert plans["A5"].campaign.sem.detector is Detector.SE
        for chip_id in ("B4", "C4", "B5", "C5"):
            assert plans[chip_id].campaign.sem.detector is Detector.BSE

    def test_dwell_times_follow_section4b(self):
        """'dwell times of 3 us (A4-5, B4) and 6 us (B5, C4-5)'."""
        plans = all_plans()
        for chip_id in ("A4", "A5", "B4"):
            assert plans[chip_id].campaign.sem.dwell_time_us == 3.0
        for chip_id in ("B5", "C4", "C5"):
            assert plans[chip_id].campaign.sem.dwell_time_us == 6.0

    def test_pixel_resolution_from_table1(self):
        assert plan_for("B4").campaign.sem.pixel_nm == pytest.approx(3.4)

    def test_rationale_mentions_detector_choice(self):
        plan = plan_for("C5")
        assert any("switched to BSE" in r for r in plan.rationale)
        plan_a = plan_for("A4")
        assert any("SE used" in r for r in plan_a.rationale)

    def test_planned_contrast_usable(self):
        """Every planned campaign keeps the materials separable — the
        whole point of the §IV-B choices."""
        for plan in all_plans().values():
            assert contrast_separation(plan.campaign.sem) > 1.5

    def test_se_on_hostile_process_would_not_be(self):
        """The counterfactual: keeping SE for vendor C would collapse the
        contrast the plan preserves."""
        from repro.imaging.sem import SemParameters

        bad = SemParameters(detector=Detector.SE, se_friendly_process=False, dwell_time_us=6.0)
        good = plan_for("C4").campaign.sem
        assert contrast_separation(good) > 1.5 * contrast_separation(bad)

    def test_accepts_chip_objects(self):
        from repro.core.chips import chip

        plan = plan_for(chip("B5"))
        assert plan.chip_id == "B5"
