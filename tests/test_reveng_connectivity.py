"""Connectivity extraction: masks → netlist."""

import pytest

from repro.errors import ReverseEngineeringError
from repro.layout.elements import Layer
from repro.reveng.connectivity import _Dsu, extract_circuit
from repro.reveng.features import PlanarFeatures


class TestDsu:
    def test_union_find(self):
        dsu = _Dsu()
        dsu.union("a", "b")
        dsu.union("b", "c")
        assert dsu.find("a") == dsu.find("c")
        assert dsu.find("d") == "d"

    def test_path_compression_idempotent(self):
        dsu = _Dsu()
        for i in range(20):
            dsu.union(i, i + 1)
        root = dsu.find(0)
        assert all(dsu.find(i) == root for i in range(21))


class TestExtraction:
    def test_device_count_classic(self, classic_re):
        # 2 pairs x 9 + 4 LSA devices.
        assert len(classic_re.extracted.devices) == 22

    def test_device_count_ocsa(self, ocsa_re):
        # 2 pairs x 12 + 4 LSA devices.
        assert len(ocsa_re.extracted.devices) == 28

    def test_no_floating_terminals(self, classic_re):
        for dev in classic_re.extracted.circuit:
            for _pin, net in dev.terminal_nets():
                assert not net.startswith("float"), dev.name

    def test_measured_dimensions_plausible(self, ocsa_re):
        for dev in ocsa_re.extracted.devices.values():
            assert 10.0 < dev.width_nm < 400.0
            assert 10.0 < dev.length_nm < 200.0

    def test_gate_span_distinguishes_rails(self, ocsa_re):
        spans = [d.gate_span_fraction for d in ocsa_re.extracted.devices.values()]
        assert any(s > 0.6 for s in spans)  # common-gate rails
        assert any(s < 0.4 for s in spans)  # individual gates

    def test_net_component_map_covers_conductors(self, classic_re):
        extracted = classic_re.extracted
        for layer in (Layer.METAL1, Layer.METAL2, Layer.GATE):
            _labels, count = extracted.features.components(layer)
            mapped = [
                cid for (lay, cid) in extracted.net_of_component if lay is layer
            ]
            assert len(mapped) == count

    def test_nets_on_layer_and_components_of_net(self, classic_re):
        extracted = classic_re.extracted
        m1_nets = extracted.nets_on_layer(Layer.METAL1)
        assert m1_nets
        some_net = next(iter(m1_nets))
        assert extracted.components_of_net(some_net)

    def test_shared_gates_extracted_as_one_net(self, ocsa_re):
        """The ISO rail crosses every lane: all ISO devices share a gate."""
        devices = ocsa_re.extracted.devices
        classification = ocsa_re.classification
        from repro.reveng.classify import TransistorClass

        iso_gates = {
            devices[name].gate_net
            for name, cls in classification.functional.items()
            if cls is TransistorClass.ISOLATION
        }
        # One ISO rail per tile.
        assert len(iso_gates) == 2

    def test_empty_features_raise_on_classify(self):
        import numpy as np

        from repro.reveng.classify import classify_devices
        from repro.reveng.features import FEATURE_LAYERS

        masks = {layer: np.zeros((32, 32), dtype=bool) for layer in FEATURE_LAYERS}
        features = PlanarFeatures(masks=masks, pixel_nm=6.0)
        extracted = extract_circuit(features)
        with pytest.raises(ReverseEngineeringError):
            classify_devices(extracted)
