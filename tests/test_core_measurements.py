"""Measurement records and sample synthesis."""

import pytest
from hypothesis import given, strategies as st

from repro.core.measurements import (
    MeasurementSet,
    TransistorRecord,
    synthesize_measurements,
)
from repro.errors import EvaluationError
from repro.layout.elements import TransistorKind


class TestRecord:
    def test_wl_ratio(self):
        rec = TransistorRecord(w=100, l=40, eff_w=145, eff_l=88)
        assert rec.wl_ratio == pytest.approx(2.5)

    def test_rejects_non_positive(self):
        with pytest.raises(EvaluationError):
            TransistorRecord(w=0, l=40, eff_w=10, eff_l=80)

    def test_effective_must_cover_drawn(self):
        with pytest.raises(EvaluationError):
            TransistorRecord(w=100, l=40, eff_w=90, eff_l=80)

    @given(
        st.floats(min_value=1, max_value=1000),
        st.floats(min_value=1, max_value=1000),
    )
    def test_ratio_property(self, w, l):  # noqa: E741
        rec = TransistorRecord(w=w, l=l, eff_w=w * 2, eff_l=l * 2)
        assert rec.wl_ratio == pytest.approx(w / l)


class TestSynthesis:
    RECORDS = {
        TransistorKind.NSA: TransistorRecord(w=100, l=40, eff_w=145, eff_l=88),
        TransistorKind.PSA: TransistorRecord(w=70, l=40, eff_w=102, eff_l=88),
    }

    def test_deterministic(self):
        a = synthesize_measurements("X1", self.RECORDS)
        b = synthesize_measurements("X1", self.RECORDS)
        assert a.samples == b.samples

    def test_different_chips_different_samples(self):
        a = synthesize_measurements("X1", self.RECORDS)
        b = synthesize_measurements("X2", self.RECORDS)
        assert a.samples != b.samples

    def test_sample_count(self):
        ms = synthesize_measurements("X1", self.RECORDS, samples_per_dim=7)
        assert ms.count() == 2 * 2 * 7

    def test_means_close_to_records(self):
        ms = synthesize_measurements("X1", self.RECORDS, samples_per_dim=30)
        assert ms.mean(TransistorKind.NSA, "w") == pytest.approx(100, rel=0.1)
        assert ms.mean(TransistorKind.PSA, "l") == pytest.approx(40, rel=0.1)

    def test_spread_contains_mean(self):
        ms = synthesize_measurements("X1", self.RECORDS)
        lo, hi = ms.spread(TransistorKind.NSA, "w")
        assert lo <= ms.mean(TransistorKind.NSA, "w") <= hi

    def test_stdev_positive(self):
        ms = synthesize_measurements("X1", self.RECORDS)
        assert ms.stdev(TransistorKind.NSA, "w") > 0

    def test_missing_dimension_raises(self):
        ms = MeasurementSet(chip_id="empty")
        with pytest.raises(EvaluationError):
            ms.mean(TransistorKind.NSA, "w")

    def test_samples_positive(self):
        ms = synthesize_measurements("X1", self.RECORDS, sigma=0.4)
        for dims in ms.samples.values():
            for values in dims.values():
                assert all(v > 0 for v in values)
