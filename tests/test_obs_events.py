"""The lifecycle event bus: ring semantics, drop accounting, and the
ordered ``obs-event/1`` stream a parallel campaign publishes.

Unit-level coverage of :mod:`repro.obs.events` (bounded ring, strictly
increasing ``seq``, ``absorb`` re-sequencing, blocking ``wait``) plus
the campaign integration contract: a ``workers=2`` run emits one
monotonic event stream whose per-chip blocks are internally ordered
(chip_start → stages → chip_finish) and whose first/last events frame
the campaign.
"""

import json
import threading
import time

import pytest

from repro.errors import CampaignError
from repro.faults import FaultPlan
from repro.imaging import FibSemCampaign, SemParameters
from repro.layout import SaRegionSpec
from repro.obs import (
    EVENT_KINDS,
    EVENT_SCHEMA,
    Event,
    EventBus,
    NoopEventBus,
    ObsConfig,
    current_events,
    events_from_jsonl,
    events_to_jsonl,
    use_events,
)
from repro.pipeline import PipelineConfig
from repro.runtime import ChipJob, ResiliencePolicy, run_campaign

FAST = PipelineConfig(denoise_iterations=10, align_search_px=2, align_baselines=(1, 2))

STAGE_ORDER = ["layout", "voxelize", "acquire", "denoise", "align", "assemble", "reveng"]


def _job(name: str, topo: str, fault_plan: FaultPlan | None = None) -> ChipJob:
    return ChipJob(
        name=name,
        spec=SaRegionSpec(name=name.replace("-", "_"), topology=topo, n_pairs=1),
        campaign=FibSemCampaign(sem=SemParameters(dwell_time_us=6.0)),
        y_stop_nm=300.0,
        fault_plan=fault_plan,
    )


# ---------------------------------------------------------------------------
# Event serialization


class TestEvent:
    def test_dict_round_trip(self):
        event = Event(kind="chip_start", ts_s=12.5, seq=3, pid=42,
                      fields={"chip": "a"})
        data = event.to_dict()
        assert data["schema"] == EVENT_SCHEMA
        restored = Event.from_dict(data)
        assert restored == event

    def test_foreign_schema_rejected(self):
        data = Event(kind="x", ts_s=0.0, seq=1, pid=0).to_dict()
        data["schema"] = "obs-event/99"
        with pytest.raises(ValueError, match="unsupported event schema"):
            Event.from_dict(data)

    def test_jsonl_round_trip(self):
        events = [
            Event(kind="campaign_start", ts_s=1.0, seq=1, pid=1, fields={"jobs": 2}),
            Event(kind="campaign_finish", ts_s=2.0, seq=2, pid=1),
        ]
        text = events_to_jsonl(events)
        assert all(json.loads(line)["schema"] == EVENT_SCHEMA
                   for line in text.splitlines())
        assert events_from_jsonl(text) == events

    def test_known_kinds_cover_lifecycle(self):
        assert {"campaign_start", "chip_finish", "stage_start", "cache_hit",
                "shard_backpressure"} <= set(EVENT_KINDS)


# ---------------------------------------------------------------------------
# EventBus ring semantics


class TestEventBus:
    def test_seq_strictly_increasing(self):
        bus = EventBus()
        for i in range(5):
            bus.emit("stage_start", stage=f"s{i}")
        seqs = [e.seq for e in bus.snapshot()]
        assert seqs == [1, 2, 3, 4, 5]
        assert bus.last_seq == 5
        assert bus.dropped == 0

    def test_overflow_drops_oldest_and_counts(self):
        bus = EventBus(capacity=4)
        for i in range(10):
            bus.emit("stage_finish", i=i)
        events = bus.snapshot()
        assert len(events) == 4
        assert bus.dropped == 6
        # The survivors are the *newest* four, seq gap visible to tailers.
        assert [e.seq for e in events] == [7, 8, 9, 10]
        assert [e.fields["i"] for e in events] == [6, 7, 8, 9]
        assert bus.last_seq == 10

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventBus(capacity=0)

    def test_drain_since(self):
        bus = EventBus()
        for i in range(4):
            bus.emit("cache_hit", i=i)
        assert [e.seq for e in bus.drain(since_seq=2)] == [3, 4]
        assert bus.drain(since_seq=4) == []
        assert [e.seq for e in bus.drain()] == [1, 2, 3, 4]

    def test_absorb_preserves_payload_reassigns_seq(self):
        worker = EventBus()
        worker.emit("chip_start", chip="w")
        worker.emit("chip_finish", chip="w")
        foreign = worker.snapshot()
        campaign = EventBus()
        campaign.emit("campaign_start")
        campaign.absorb(foreign)
        events = campaign.snapshot()
        assert [e.seq for e in events] == [1, 2, 3]
        assert [e.kind for e in events[1:]] == ["chip_start", "chip_finish"]
        # Timestamps and pids survive the fold; seq is the campaign's own.
        assert events[1].ts_s == foreign[0].ts_s
        assert events[1].pid == foreign[0].pid
        assert events[1].fields == {"chip": "w"}

    def test_concurrent_emitters_keep_monotonic_seq(self):
        bus = EventBus(capacity=64)
        n_threads, per_thread = 8, 50

        def pump(t: int) -> None:
            for i in range(per_thread):
                bus.emit("cache_miss", t=t, i=i)

        threads = [threading.Thread(target=pump, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = n_threads * per_thread
        assert bus.last_seq == total
        assert bus.dropped == total - 64
        seqs = [e.seq for e in bus.snapshot()]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_wait_wakes_on_emit(self):
        bus = EventBus()
        got: list[Event] = []

        def consumer() -> None:
            got.extend(bus.wait(since_seq=0, timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.02)
        bus.emit("campaign_finish")
        thread.join(timeout=5.0)
        assert [e.kind for e in got] == ["campaign_finish"]

    def test_wait_timeout_returns_empty(self):
        bus = EventBus()
        assert bus.wait(since_seq=0, timeout=0.01) == []

    def test_on_event_tap(self):
        bus = EventBus()
        seen: list[str] = []
        bus.on_event = lambda e: seen.append(e.kind)
        bus.emit("chip_start")
        bus.emit("chip_finish")
        assert seen == ["chip_start", "chip_finish"]

    def test_noop_bus_is_free(self):
        bus = current_events()  # nothing activated by default
        assert isinstance(bus, NoopEventBus)
        assert not bus.enabled
        assert bus.dropped == 0
        bus.emit("stage_start", stage="x")  # swallowed, records nothing

    def test_use_events_restores_previous(self):
        bus = EventBus()
        with use_events(bus):
            assert current_events() is bus
            inner = EventBus()
            with use_events(inner):
                assert current_events() is inner
            assert current_events() is bus
        assert isinstance(current_events(), NoopEventBus)


# ---------------------------------------------------------------------------
# Campaign event stream


@pytest.fixture(scope="module")
def event_report():
    """A 2-chip, 2-worker campaign with the event bus (and metrics) on."""
    jobs = [_job("ev-classic", "classic"), _job("ev-ocsa", "ocsa")]
    return run_campaign(
        jobs, config=FAST, workers=2,
        obs=ObsConfig(events=True, metrics=True),
    )


class TestCampaignEvents:
    def test_stream_framed_by_campaign_events(self, event_report):
        events = event_report.events
        assert events, "no events recorded"
        assert events[0].kind == "campaign_start"
        assert events[0].fields == {"jobs": 2, "workers": 2}
        assert events[-1].kind == "campaign_finish"
        finish = events[-1].fields
        assert finish["completed"] == 2
        assert finish["quarantined"] == 0
        assert finish["dropped"] == 0
        assert finish["wall_seconds"] > 0

    def test_seq_monotonic_no_gaps(self, event_report):
        seqs = [e.seq for e in event_report.events]
        assert seqs == list(range(1, len(seqs) + 1))

    def test_per_chip_ordering(self, event_report):
        for chip in ("ev-classic", "ev-ocsa"):
            mine = [e for e in event_report.events
                    if e.fields.get("chip") == chip]
            kinds = [e.kind for e in mine]
            assert kinds[0] == "chip_start"
            assert kinds[-1] == "chip_finish"
            starts = [e.fields["stage"] for e in mine if e.kind == "stage_start"]
            assert starts == STAGE_ORDER
            finishes = [e.fields["stage"] for e in mine if e.kind == "stage_finish"]
            assert finishes == STAGE_ORDER
            # Every stage_start precedes its stage_finish.
            for stage in STAGE_ORDER:
                start_seq = next(e.seq for e in mine if e.kind == "stage_start"
                                 and e.fields["stage"] == stage)
                finish_seq = next(e.seq for e in mine if e.kind == "stage_finish"
                                  and e.fields["stage"] == stage)
                assert start_seq < finish_seq

    def test_cache_and_attempt_events(self, event_report):
        kinds = {e.kind for e in event_report.events}
        assert {"attempt_start", "attempt_finish", "cache_miss"} <= kinds
        # No cache dir: every stage lookup is a miss, none a hit.
        misses = [e for e in event_report.events if e.kind == "cache_miss"]
        assert len(misses) == 2 * len(STAGE_ORDER)
        assert all(e.fields["disposition"] == "run" for e in misses)

    def test_stage_finish_carries_timing(self, event_report):
        finishes = [e for e in event_report.events if e.kind == "stage_finish"]
        assert all(e.fields["seconds"] >= 0 for e in finishes)
        assert all("disposition" in e.fields for e in finishes)

    def test_chip_finish_summarises_cache(self, event_report):
        for e in event_report.events:
            if e.kind == "chip_finish":
                assert e.fields["cache_misses"] == len(STAGE_ORDER)
                assert e.fields["cache_hits"] == 0
                assert e.fields["seconds"] > 0

    def test_save_events_round_trips(self, event_report, tmp_path):
        path = event_report.save_events(tmp_path / "nested" / "events.jsonl")
        restored = events_from_jsonl(path.read_text())
        assert restored == event_report.events

    def test_events_none_when_bus_off(self):
        report = run_campaign([_job("ev-off", "classic")], config=FAST, workers=1)
        assert report.events is None
        with pytest.raises(CampaignError, match="without the event bus"):
            report.save_events("/tmp/never.jsonl")

    def test_rss_gauges_recorded(self, event_report):
        gauges = event_report.metrics["gauges"]
        assert gauges["repro_campaign_rss_bytes"] > 0
        assert gauges["repro_campaign_rss_peak_bytes"] >= (
            gauges["repro_campaign_rss_bytes"]
        )


class TestQuarantineEvents:
    def test_quarantine_emits_event(self):
        poison = FaultPlan(seed=3, drop_rate=0.6, drift_spike_rate=0.3)
        report = run_campaign(
            [_job("ev-poisoned", "classic", poison)], config=FAST, workers=1,
            policy=ResiliencePolicy(max_retries=1),
            obs=ObsConfig(events=True),
        )
        kinds = [e.kind for e in report.events]
        assert "chip_quarantined" in kinds
        assert "attempt_retry" in kinds
        quarantine = next(e for e in report.events
                          if e.kind == "chip_quarantined")
        assert quarantine.fields["chip"] == "ev-poisoned"
        assert quarantine.fields["error_type"] == "AcquisitionError"
        retry = next(e for e in report.events if e.kind == "attempt_retry")
        assert retry.fields["failed_slices"] > 0


# ---------------------------------------------------------------------------
# End-of-stream: EventBus.close semantics and campaign bus ownership


class TestBusClose:
    def test_wait_returns_immediately_when_closed(self):
        bus = EventBus()
        bus.emit("campaign_start")
        bus.close()
        t0 = time.perf_counter()
        assert bus.wait(since_seq=bus.last_seq, timeout=5.0) == []
        assert time.perf_counter() - t0 < 1.0
        assert bus.closed

    def test_close_wakes_parked_waiter(self):
        bus = EventBus()
        woke = threading.Event()

        def consumer() -> None:
            bus.wait(since_seq=0, timeout=10.0)
            woke.set()

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.02)
        bus.close()
        assert woke.wait(timeout=5.0), "close() left the waiter parked"
        thread.join(timeout=5.0)

    def test_emit_reopens_closed_bus(self):
        bus = EventBus()
        bus.close()
        bus.emit("campaign_start")
        assert not bus.closed

    def test_noop_bus_close_is_free(self):
        bus = NoopEventBus()
        bus.close()
        assert bus.closed is False

    def test_campaign_closes_ambient_bus_at_end(self):
        """A follow stream on the live (ambient) bus must learn the run is
        over: the campaign closes the bus it adopted once the report is
        assembled."""
        bus = EventBus()
        with use_events(bus):
            run_campaign([_job("ev-close", "classic")], config=FAST,
                         workers=1, obs=ObsConfig(events=True))
        assert bus.closed
        assert [e.kind for e in bus.drain()][-1] == "campaign_finish"

    def test_campaign_leaves_injected_bus_open(self):
        """An injected bus (the serve daemon's per-job stream) belongs to
        the caller — the campaign must not close it, since the caller
        still appends its own framing events after the run."""
        bus = EventBus()
        run_campaign([_job("ev-injected", "classic")], config=FAST,
                     workers=1, bus=bus)
        assert not bus.closed
        kinds = [e.kind for e in bus.drain()]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_finish"
