"""Geometry primitives: Rect, Point, pitch estimation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LayoutError
from repro.layout.geometry import Point, Rect, pitch_of

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestPoint:
    def test_translate(self):
        assert Point(1, 2).translated(3, -1) == Point(4, 1)

    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_as_tuple(self):
        assert Point(7, 8).as_tuple() == (7, 8)


class TestRect:
    def test_normalises_corner_order(self):
        r = Rect(10, 20, 0, 5)
        assert (r.x0, r.y0, r.x1, r.y1) == (0, 5, 10, 20)

    def test_measures(self):
        r = Rect(0, 0, 4, 3)
        assert r.width == 4
        assert r.height == 3
        assert r.area == 12
        assert r.center == Point(2, 1.5)

    def test_from_center(self):
        r = Rect.from_center(10, 10, 4, 2)
        assert (r.x0, r.y0, r.x1, r.y1) == (8, 9, 12, 11)

    def test_from_center_rejects_negative(self):
        with pytest.raises(LayoutError):
            Rect.from_center(0, 0, -1, 2)

    def test_contains_point(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(Point(5, 5))
        assert r.contains_point(Point(0, 10))  # boundary included
        assert not r.contains_point(Point(11, 5))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(5, 5, 12, 8))

    def test_intersects_and_intersection(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 15, 15)
        assert a.intersects(b)
        overlap = a.intersection(b)
        assert overlap == Rect(5, 5, 10, 10)

    def test_touching_counts_as_intersecting(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(10, 0, 20, 10)
        assert a.intersects(b)
        assert a.intersection(b).area == 0

    def test_disjoint(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(5, 5, 6, 6)
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_gap_to(self):
        a = Rect(0, 0, 10, 10)
        assert a.gap_to(Rect(13, 0, 20, 10)) == pytest.approx(3.0)
        assert a.gap_to(Rect(13, 14, 20, 20)) == pytest.approx(5.0)  # 3-4-5
        assert a.gap_to(Rect(5, 5, 6, 6)) == 0.0

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(2, 3) == Rect(2, 3, 3, 4)

    def test_inflated(self):
        r = Rect(5, 5, 10, 10).inflated(1)
        assert r == Rect(4, 4, 11, 11)
        r2 = Rect(0, 0, 10, 10).inflated(1, 2)
        assert r2 == Rect(-1, -2, 11, 12)

    def test_inflated_rejects_inversion(self):
        with pytest.raises(LayoutError):
            Rect(0, 0, 2, 2).inflated(-2)

    def test_bounding(self):
        box = Rect.bounding([Rect(0, 0, 1, 1), Rect(5, -2, 6, 3)])
        assert box == Rect(0, -2, 6, 3)

    def test_bounding_empty_raises(self):
        with pytest.raises(LayoutError):
            Rect.bounding([])

    def test_corners_order(self):
        corners = list(Rect(0, 0, 2, 3).corners())
        assert corners == [Point(0, 0), Point(2, 0), Point(2, 3), Point(0, 3)]

    @given(finite, finite, finite, finite)
    def test_normalisation_property(self, a, b, c, d):
        r = Rect(a, b, c, d)
        assert r.x0 <= r.x1
        assert r.y0 <= r.y1
        assert r.area >= 0

    @given(finite, finite, finite, finite, finite, finite, finite, finite)
    def test_intersection_commutes(self, a, b, c, d, e, f, g, h):
        r1, r2 = Rect(a, b, c, d), Rect(e, f, g, h)
        assert r1.intersects(r2) == r2.intersects(r1)
        i1, i2 = r1.intersection(r2), r2.intersection(r1)
        assert (i1 is None) == (i2 is None)
        if i1 is not None:
            assert i1 == i2

    @given(finite, finite, st.floats(min_value=0.1, max_value=1e3), st.floats(min_value=0.1, max_value=1e3))
    def test_intersection_within_both(self, x, y, w, h):
        r1 = Rect.from_center(x, y, w, h)
        r2 = Rect.from_center(x + w / 4, y, w, h)
        overlap = r1.intersection(r2)
        assert overlap is not None
        assert r1.contains_rect(overlap)
        assert r2.contains_rect(overlap)


class TestPitch:
    def test_regular_pitch(self):
        assert pitch_of([0, 36, 72, 108]) == pytest.approx(36.0)

    def test_median_is_robust_to_one_gap(self):
        # One missing wire doubles a single gap; the median survives.
        assert pitch_of([0, 36, 72, 144, 180, 216]) == pytest.approx(36.0)

    def test_needs_two_positions(self):
        with pytest.raises(LayoutError):
            pitch_of([5.0])

    def test_unsorted_input(self):
        assert pitch_of([72, 0, 36]) == pytest.approx(36.0)
