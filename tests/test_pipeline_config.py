"""PipelineConfig, the Stage protocol, and the deprecation shims."""

import numpy as np
import pytest

from repro.errors import PipelineError
from repro.pipeline import (
    AlignStage,
    AssembleStage,
    DenoiseStage,
    PipelineConfig,
    PlanarViewStage,
    SegmentStage,
    Stage,
    align_stack,
    denoise_stack,
)


def _texture(seed: int = 7, shape=(24, 16)) -> np.ndarray:
    rng = np.random.default_rng(seed)
    base = np.zeros(shape)
    base[::4, :] = 0.8
    base[:, ::5] = 0.5
    return np.clip(base + rng.normal(0, 0.08, shape), 0, 1)


class TestPipelineConfig:
    def test_defaults_match_legacy_behaviour(self):
        cfg = PipelineConfig()
        assert cfg.denoise_method == "chambolle"
        assert cfg.denoise_weight == 0.08
        assert cfg.align_search_px == 4
        assert cfg.align_baselines == (1, 2, 3)
        assert cfg.segment_tolerance == 0.5

    @pytest.mark.parametrize("bad", [
        {"denoise_method": "median"},
        {"denoise_weight": 0.0},
        {"denoise_iterations": 0},
        {"align_search_px": 0},
        {"align_bins": 1},
        {"align_baselines": ()},
        {"align_baselines": (0,)},
        {"segment_tolerance": 0.0},
        {"chunk_workers": 0},
        {"denoise_tol": 0.0},
        {"denoise_tol": -1e-3},
        {"align_shift_penalty": -0.1},
        {"align_search_strategy": "genetic"},
    ])
    def test_validation(self, bad):
        with pytest.raises(PipelineError):
            PipelineConfig(**bad)

    def test_replaced(self):
        cfg = PipelineConfig().replaced(denoise_weight=0.1)
        assert cfg.denoise_weight == 0.1
        assert cfg.denoise_method == "chambolle"

    def test_cache_token_excludes_execution_knobs(self):
        a = PipelineConfig(chunk_workers=1).cache_token()
        b = PipelineConfig(chunk_workers=8).cache_token()
        assert a == b
        assert "chunk_workers" not in a

    def test_cache_token_tracks_result_knobs(self):
        a = PipelineConfig().cache_token()
        b = PipelineConfig(segment_tolerance=0.4).cache_token()
        assert a != b

    def test_cache_token_tracks_exactness_trading_knobs(self):
        """tol / shift penalty / search strategy change results, so each
        must change the token (unlike chunk_workers)."""
        base = PipelineConfig().cache_token()
        assert PipelineConfig(denoise_tol=1e-4).cache_token() != base
        assert PipelineConfig(align_shift_penalty=0.5).cache_token() != base
        assert PipelineConfig(align_search_strategy="pyramid").cache_token() != base

    def test_align_and_denoise_kwargs(self):
        cfg = PipelineConfig(
            denoise_tol=1e-4, align_shift_penalty=0.2, align_search_strategy="pyramid"
        )
        assert cfg.denoise_kwargs()["tol"] == 1e-4
        assert cfg.align_kwargs() == {
            "search_px": 4, "bins": 32, "baselines": (1, 2, 3),
            "shift_penalty": 0.2, "search_strategy": "pyramid",
        }
        assert "tol" not in PipelineConfig().denoise_kwargs()


class TestLegacyShim:
    def test_mapping_and_warning(self):
        with pytest.warns(DeprecationWarning, match="PipelineConfig"):
            cfg = PipelineConfig.from_legacy_kwargs(
                denoise_method="split_bregman", denoise_weight=0.1, align_search_px=2
            )
        assert cfg.denoise_method == "split_bregman"
        assert cfg.denoise_weight == 0.1
        assert cfg.align_search_px == 2

    def test_no_kwargs_no_warning(self, recwarn):
        cfg = PipelineConfig.from_legacy_kwargs()
        assert cfg == PipelineConfig()
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]

    def test_unknown_kwarg_raises(self):
        with pytest.raises(TypeError, match="bogus"):
            PipelineConfig.from_legacy_kwargs(bogus=1)

    def test_reverse_engineer_stack_accepts_legacy_kwargs(self):
        """The public full-path entry point still takes the old keywords —
        warning first, then normal validation of the mapped config."""
        from repro.imaging.fib import SliceStack
        from repro.reveng import reverse_engineer_stack

        stack = SliceStack(
            images=[_texture(1), _texture(2)],
            slice_thickness_nm=12.0,
            pixel_nm=6.0,
            true_drift_px=[(0, 0), (0, 0)],
            slice_y_nm=[0.0, 12.0],
        )
        with pytest.warns(DeprecationWarning):
            with pytest.raises(PipelineError, match="unknown denoising method"):
                reverse_engineer_stack(stack, denoise_method="median")

    def test_reverse_engineer_stack_rejects_unknown_kwargs(self):
        from repro.imaging.fib import SliceStack
        from repro.reveng import reverse_engineer_stack

        stack = SliceStack(
            images=[_texture(1)], slice_thickness_nm=12.0, pixel_nm=6.0,
            true_drift_px=[(0, 0)], slice_y_nm=[0.0],
        )
        with pytest.raises(TypeError, match="denoise_wieght"):
            reverse_engineer_stack(stack, denoise_wieght=0.1)


class TestStageProtocol:
    def test_adapters_satisfy_protocol(self):
        cfg = PipelineConfig()
        stages = [
            DenoiseStage(cfg),
            AlignStage(cfg),
            AssembleStage(pixel_nm=6.0, slice_thickness_nm=12.0),
            PlanarViewStage(),
            SegmentStage(cfg, pixel_nm=6.0),
        ]
        for stage in stages:
            assert isinstance(stage, Stage)
            assert stage.name and stage.version

    def test_denoise_stage_matches_function(self):
        cfg = PipelineConfig(denoise_iterations=5)
        images = [_texture(1), _texture(2)]
        out, notes = DenoiseStage(cfg)(images)
        direct = denoise_stack(images, method="chambolle", weight=0.08, iterations=5)
        assert notes == {"slices": 2.0}
        for a, b in zip(out, direct):
            np.testing.assert_array_equal(a, b)

    def test_align_stage_matches_function_and_keeps_report(self):
        cfg = PipelineConfig(align_search_px=2, align_baselines=(1,))
        images = [_texture(3), np.roll(_texture(3), 1, axis=0)]
        stage = AlignStage(cfg, true_drift_px=[(0, 0), (1, 0)])
        aligned, notes = stage(images)
        direct, report = align_stack(
            images, search_px=2, baselines=(1,), true_drift_px=[(0, 0), (1, 0)]
        )
        assert stage.report is not None
        assert stage.report.corrections == report.corrections
        assert notes["max_residual_px"] == float(report.max_residual_px())
        for a, b in zip(aligned, direct):
            np.testing.assert_array_equal(a, b)


class TestChunkWorkers:
    """Thread-level chunk parallelism is bit-identical to serial."""

    def test_denoise_stack_workers_equivalent(self):
        images = [_texture(i) for i in range(4)]
        serial = denoise_stack(images, iterations=5)
        threaded = denoise_stack(images, iterations=5, workers=3)
        for a, b in zip(serial, threaded):
            np.testing.assert_array_equal(a, b)

    def test_align_stack_workers_equivalent(self):
        rng = np.random.default_rng(11)
        images = [_texture(0)]
        for i in range(1, 5):
            images.append(np.clip(
                np.roll(images[-1], int(rng.integers(-1, 2)), axis=0)
                + rng.normal(0, 0.02, images[0].shape), 0, 1,
            ))
        serial, rep_a = align_stack(images, search_px=2)
        threaded, rep_b = align_stack(images, search_px=2, workers=3)
        assert rep_a.corrections == rep_b.corrections
        for a, b in zip(serial, threaded):
            np.testing.assert_array_equal(a, b)
