"""Stable hashing and the content-addressed stage cache."""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CampaignError
from repro.imaging import FibSemCampaign
from repro.layout import SaRegionSpec
from repro.runtime import StageCache, canonicalize, chain_key, stable_hash


class TestStableHash:
    def test_deterministic_across_dict_order(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_value_sensitivity(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})
        assert stable_hash({"a": 1}) != stable_hash({"b": 1})

    def test_dataclass_and_enum_canonicalization(self):
        spec = SaRegionSpec(name="x", topology="ocsa", n_pairs=2)
        token = canonicalize(spec)
        assert token["class"] == "SaRegionSpec"
        # dims is keyed by TransistorKind enums → canonical string keys
        assert all(isinstance(k, str) for k in token["fields"]["dims"])

    def test_spec_hash_changes_with_geometry(self):
        a = SaRegionSpec(name="x", topology="ocsa", n_pairs=2)
        b = SaRegionSpec(name="x", topology="ocsa", n_pairs=2, feature_nm=16.0)
        assert stable_hash(a) != stable_hash(b)

    def test_campaign_hash_changes_with_seed(self):
        assert stable_hash(FibSemCampaign(seed=1)) != stable_hash(FibSemCampaign(seed=2))

    def test_unhashable_object_raises(self):
        with pytest.raises(CampaignError):
            stable_hash({"fn": object()})

    def test_int_and_str_keys_never_collide(self):
        """Regression: ``{1: x}`` and ``{"1": x}`` used to share a digest
        (both keys collapsed to the bare string ``"1"``), so two different
        parameter dicts could serve each other's cache entries."""
        assert stable_hash({1: "a"}) != stable_hash({"1": "a"})
        assert stable_hash({True: "a"}) != stable_hash({1: "a"})
        assert stable_hash({1.0: "a"}) != stable_hash({1: "a"})
        assert canonicalize({1: "a"}) == {"int:1": "a"}
        assert canonicalize({"1": "a"}) == {"str:1": "a"}

    def test_non_finite_floats_hash_as_sentinels(self):
        """Regression: NaN/±inf raised (numpy scalars) or leaked the
        non-standard ``NaN``/``Infinity`` JSON tokens."""
        assert canonicalize(float("nan")) == "float:nan"
        assert canonicalize(float("inf")) == "float:inf"
        assert canonicalize(float("-inf")) == "float:-inf"
        digests = {stable_hash(v) for v in
                   (float("nan"), float("inf"), float("-inf"), 0.0)}
        assert len(digests) == 4

    def test_numpy_non_finite_scalars_hash_like_builtins(self):
        assert stable_hash(np.float32("nan")) == stable_hash(float("nan"))
        assert stable_hash(np.float64("inf")) == stable_hash(float("inf"))
        assert stable_hash(np.float64("-inf")) == stable_hash(float("-inf"))
        assert stable_hash({"w": np.float64("nan")}) == stable_hash({"w": float("nan")})

    def test_canonical_json_is_strict(self):
        """The canonical form always survives strict JSON round-tripping."""
        obj = {"a": float("inf"), 3: [float("nan"), np.float32(2.0)]}
        payload = json.dumps(canonicalize(obj), allow_nan=False, sort_keys=True)
        assert json.loads(payload) == canonicalize(obj)

    def test_chain_key_depends_on_parent_and_version(self):
        k1 = chain_key(None, "denoise", "1", {"w": 0.08})
        assert chain_key(None, "denoise", "2", {"w": 0.08}) != k1
        assert chain_key(k1, "denoise", "1", {"w": 0.08}) != k1
        assert chain_key(None, "denoise", "1", {"w": 0.09}) != k1
        assert chain_key(None, "denoise", "1", {"w": 0.08}) == k1


_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.text(max_size=12),
)
_key = st.one_of(
    st.text(max_size=8),
    st.booleans(),
    st.integers(min_value=-100, max_value=100),
)
_tree = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_key, children, max_size=4),
    ),
    max_leaves=12,
)


def _comparable(canonical):
    """A type-tagged view of a canonical form under which equality means
    exactly "same canonical JSON text": ``1``/``1.0``/``True`` compare
    equal in Python but encode differently, and ``repr`` separates
    ``-0.0`` from ``0.0`` the same way ``json.dumps`` does."""
    if isinstance(canonical, list):
        return ("list", tuple(_comparable(v) for v in canonical))
    if isinstance(canonical, dict):
        return ("dict", tuple(sorted(
            (k, _comparable(v)) for k, v in canonical.items()
        )))
    if isinstance(canonical, float):
        return ("float", repr(canonical))
    return (type(canonical).__name__, canonical)


class TestDigestInjectivity:
    @given(a=_tree, b=_tree)
    @settings(max_examples=200, deadline=None)
    def test_distinct_canonical_inputs_never_share_a_digest(self, a, b):
        """``stable_hash`` collides iff the canonical forms are identical
        (so ``{1: x}`` vs ``{"1": x}``, NaN vs inf, 0 vs False all stay
        distinct) — the injectivity the cache-key contract promises."""
        ca, cb = _comparable(canonicalize(a)), _comparable(canonicalize(b))
        if ca == cb:
            assert stable_hash(a) == stable_hash(b)
        else:
            assert stable_hash(a) != stable_hash(b)


class TestStageCache:
    def test_roundtrip(self, tmp_path):
        cache = StageCache(tmp_path)
        key = stable_hash({"stage": "test"})
        assert not cache.contains(key)
        nbytes = cache.store(key, {"value": [1, 2, 3]}, {"n": 3.0})
        assert nbytes > 0
        assert cache.contains(key)
        assert cache.entry_bytes(key) == nbytes
        payload, notes = cache.load(key)
        assert payload == {"value": [1, 2, 3]}
        assert notes == {"n": 3.0}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = StageCache(tmp_path)
        key = stable_hash("corrupt")
        cache.store(key, {"v": 1}, {})
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.load(key) is None

    def test_disabled_cache(self):
        cache = StageCache(None)
        assert not cache.enabled
        assert not cache.contains("ab" * 32)
        assert cache.load("ab" * 32) is None
        assert cache.store("ab" * 32, {"v": 1}, {}) == 0
        assert cache.entry_bytes("ab" * 32) == 0

    def test_concurrent_writers_share_a_directory(self, tmp_path):
        """Many writers racing on the same keys (the multi-chip campaign
        shape: one shared cache dir, one StageCache per worker) never
        corrupt an entry — every load returns a complete payload."""
        keys = [stable_hash({"stage": "race", "k": k}) for k in range(4)]

        def hammer(worker: int) -> None:
            cache = StageCache(tmp_path)
            for round_ in range(8):
                for k, key in enumerate(keys):
                    cache.store(key, {"k": k, "blob": b"x" * 4096}, {"n": 1.0})
                    loaded = cache.load(key)
                    assert loaded is not None
                    payload, notes = loaded
                    assert payload["k"] == k and len(payload["blob"]) == 4096

        with ThreadPoolExecutor(max_workers=6) as pool:
            for f in [pool.submit(hammer, w) for w in range(6)]:
                f.result()  # re-raises any assertion from the workers

        cache = StageCache(tmp_path)
        for k, key in enumerate(keys):
            payload, _ = cache.load(key)
            assert payload["k"] == k
        assert not list(tmp_path.glob("*/*.tmp"))  # no leaked tmp files

    def test_sweep_removes_only_stale_tmp_files(self, tmp_path):
        cache = StageCache(tmp_path)
        key = stable_hash("sweep")
        cache.store(key, {"v": 1}, {})
        entry_dir = cache.path_for(key).parent
        stale = entry_dir / "dead-writer.tmp"
        stale.write_bytes(b"partial")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        fresh = entry_dir / "live-writer.tmp"
        fresh.write_bytes(b"in flight")

        assert cache.sweep_stale_tmp(max_age_s=3600.0) == 1
        assert not stale.exists()
        assert fresh.exists()          # live writer is left alone
        assert cache.contains(key)     # finished entries untouched
        assert cache.sweep_stale_tmp(max_age_s=3600.0) == 0

    def test_sweep_on_disabled_cache_is_a_noop(self):
        assert StageCache(None).sweep_stale_tmp() == 0


class TestBlobSidecars:
    """The mmap-backed ``.npy`` sidecar format and its corruption paths."""

    def _array_payload(self, seed=11):
        rng = np.random.default_rng(seed)
        return {
            "images": [rng.random((64, 48)) for _ in range(3)],
            "drift": [0, 1, -1],
        }

    def test_large_arrays_become_sidecars(self, tmp_path):
        import pickle as _pickle

        cache = StageCache(tmp_path, blob_min_bytes=1024)
        key = stable_hash("sidecars")
        payload = self._array_payload()
        cache.store(key, payload, {"n": 3.0})
        sidecars = sorted(cache.path_for(key).parent.glob(f"{key}.b*.npy"))
        assert len(sidecars) == 3
        loaded, notes = cache.load(key)
        assert notes == {"n": 3.0}
        # mmap-backed arrays must pickle byte-identically to the originals
        assert _pickle.dumps(loaded) == _pickle.dumps(payload)
        assert loaded["images"][0].base is not None  # actually mapped

    def test_small_arrays_stay_inline(self, tmp_path):
        cache = StageCache(tmp_path, blob_min_bytes=10**9)
        key = stable_hash("inline")
        cache.store(key, self._array_payload(), {})
        assert not list(cache.path_for(key).parent.glob(f"{key}.b*.npy"))
        loaded, _ = cache.load(key)
        assert np.array_equal(
            loaded["images"][1], self._array_payload()["images"][1]
        )

    def test_disabled_sidecars_match_classic_format(self, tmp_path):
        import pickle as _pickle

        classic = StageCache(tmp_path / "classic", blob_min_bytes=None)
        key = stable_hash("classic")
        payload = self._array_payload()
        classic.store(key, payload, {})
        assert not list(classic.path_for(key).parent.glob(f"{key}.b*.npy"))
        loaded, _ = classic.load(key)
        assert _pickle.dumps(loaded) == _pickle.dumps(payload)

    def test_zero_blob_min_bytes_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            StageCache(tmp_path, blob_min_bytes=0)

    def test_legacy_plain_pickle_entry_still_loads(self, tmp_path):
        """Entries written before the sidecar format must keep loading."""
        writer = StageCache(tmp_path, blob_min_bytes=None)
        key = stable_hash("legacy")
        payload = self._array_payload()
        writer.store(key, payload, {"n": 1.0})
        reader = StageCache(tmp_path)  # sidecar-aware reader
        loaded = reader.load(key)
        assert loaded is not None
        assert np.array_equal(loaded[0]["images"][2], payload["images"][2])

    def test_truncated_sidecar_evicts_and_misses(self, tmp_path):
        cache = StageCache(tmp_path, blob_min_bytes=1024)
        key = stable_hash("truncated")
        cache.store(key, self._array_payload(), {})
        blob = cache.blob_path(key, 0)
        blob.write_bytes(blob.read_bytes()[: blob.stat().st_size // 2])
        assert cache.load(key) is None
        assert not cache.contains(key)        # evicted, not just missed
        assert not blob.exists()
        assert cache.load(key) is None        # stable after eviction

    def test_zero_length_sidecar_evicts_and_misses(self, tmp_path):
        cache = StageCache(tmp_path, blob_min_bytes=1024)
        key = stable_hash("zero-blob")
        cache.store(key, self._array_payload(), {})
        cache.blob_path(key, 1).write_bytes(b"")
        assert cache.load(key) is None
        assert not cache.contains(key)

    def test_missing_sidecar_evicts_and_misses(self, tmp_path):
        cache = StageCache(tmp_path, blob_min_bytes=1024)
        key = stable_hash("missing-blob")
        cache.store(key, self._array_payload(), {})
        cache.blob_path(key, 2).unlink()
        assert cache.load(key) is None
        assert not cache.contains(key)

    def test_zero_length_pickle_evicts_and_misses(self, tmp_path):
        cache = StageCache(tmp_path, blob_min_bytes=1024)
        key = stable_hash("zero-pkl")
        cache.store(key, self._array_payload(), {})
        cache.path_for(key).write_bytes(b"")
        assert cache.load(key) is None
        assert not cache.contains(key)
        # the dangling sidecars were evicted along with the pickle
        assert not list(cache.path_for(key).parent.glob(f"{key}.b*.npy"))

    def test_corruption_recompute_cycle(self, tmp_path):
        """Evict-on-corruption lets a plain re-store repair the entry."""
        cache = StageCache(tmp_path, blob_min_bytes=1024)
        key = stable_hash("recompute")
        payload = self._array_payload()
        cache.store(key, payload, {"n": 3.0})
        cache.blob_path(key, 0).write_bytes(b"garbage")
        assert cache.load(key) is None
        cache.store(key, payload, {"n": 3.0})  # the recompute
        loaded = cache.load(key)
        assert loaded is not None
        assert np.array_equal(loaded[0]["images"][0], payload["images"][0])

    def test_entry_bytes_counts_sidecars(self, tmp_path):
        cache = StageCache(tmp_path, blob_min_bytes=1024)
        key = stable_hash("sizes")
        stored = cache.store(key, self._array_payload(), {})
        assert cache.entry_bytes(key) == stored
        assert stored > cache.path_for(key).stat().st_size  # pkl alone is smaller

    def test_sweep_removes_orphaned_sidecars(self, tmp_path):
        cache = StageCache(tmp_path, blob_min_bytes=1024)
        key = stable_hash("orphans")
        cache.store(key, self._array_payload(), {})
        # an orphan: sidecar with no pickle (writer died before the pkl)
        orphan_key = stable_hash("dead-writer")
        orphan_dir = cache.path_for(orphan_key).parent
        orphan_dir.mkdir(parents=True, exist_ok=True)
        orphan = orphan_dir / f"{orphan_key}.b0.npy"
        orphan.write_bytes(b"partial")
        old = time.time() - 7200
        os.utime(orphan, (old, old))
        fresh_orphan = orphan_dir / f"{orphan_key}.b1.npy"
        fresh_orphan.write_bytes(b"in flight")

        assert cache.sweep_stale_tmp(max_age_s=3600.0) == 1
        assert not orphan.exists()
        assert fresh_orphan.exists()   # young enough to be a live writer
        assert cache.load(key) is not None  # complete entries untouched
