"""Stable hashing and the content-addressed stage cache."""

import pytest

from repro.errors import CampaignError
from repro.imaging import FibSemCampaign
from repro.layout import SaRegionSpec
from repro.runtime import StageCache, canonicalize, chain_key, stable_hash


class TestStableHash:
    def test_deterministic_across_dict_order(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_value_sensitivity(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})
        assert stable_hash({"a": 1}) != stable_hash({"b": 1})

    def test_dataclass_and_enum_canonicalization(self):
        spec = SaRegionSpec(name="x", topology="ocsa", n_pairs=2)
        token = canonicalize(spec)
        assert token["class"] == "SaRegionSpec"
        # dims is keyed by TransistorKind enums → canonical string keys
        assert all(isinstance(k, str) for k in token["fields"]["dims"])

    def test_spec_hash_changes_with_geometry(self):
        a = SaRegionSpec(name="x", topology="ocsa", n_pairs=2)
        b = SaRegionSpec(name="x", topology="ocsa", n_pairs=2, feature_nm=16.0)
        assert stable_hash(a) != stable_hash(b)

    def test_campaign_hash_changes_with_seed(self):
        assert stable_hash(FibSemCampaign(seed=1)) != stable_hash(FibSemCampaign(seed=2))

    def test_unhashable_object_raises(self):
        with pytest.raises(CampaignError):
            stable_hash({"fn": object()})

    def test_chain_key_depends_on_parent_and_version(self):
        k1 = chain_key(None, "denoise", "1", {"w": 0.08})
        assert chain_key(None, "denoise", "2", {"w": 0.08}) != k1
        assert chain_key(k1, "denoise", "1", {"w": 0.08}) != k1
        assert chain_key(None, "denoise", "1", {"w": 0.09}) != k1
        assert chain_key(None, "denoise", "1", {"w": 0.08}) == k1


class TestStageCache:
    def test_roundtrip(self, tmp_path):
        cache = StageCache(tmp_path)
        key = stable_hash({"stage": "test"})
        assert not cache.contains(key)
        nbytes = cache.store(key, {"value": [1, 2, 3]}, {"n": 3.0})
        assert nbytes > 0
        assert cache.contains(key)
        assert cache.entry_bytes(key) == nbytes
        payload, notes = cache.load(key)
        assert payload == {"value": [1, 2, 3]}
        assert notes == {"n": 3.0}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = StageCache(tmp_path)
        key = stable_hash("corrupt")
        cache.store(key, {"v": 1}, {})
        cache.path_for(key).write_bytes(b"not a pickle")
        assert cache.load(key) is None

    def test_disabled_cache(self):
        cache = StageCache(None)
        assert not cache.enabled
        assert not cache.contains("ab" * 32)
        assert cache.load("ab" * 32) is None
        assert cache.store("ab" * 32, {"v": 1}, {}) == 0
        assert cache.entry_bytes("ab" * 32) == 0
