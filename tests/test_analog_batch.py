"""The batched transient solver (repro.analog.solver.BatchedTransientSolver).

The headline contract under test: instance *i* of a batched run is
*bit-identical* to a scalar :class:`TransientSolver` run with that
instance's device models — not approximately equal.  Every comparison
here is ``np.array_equal`` / ``==``, never ``allclose``.
"""

import numpy as np
import pytest

from repro.analog.devices import (
    MosModel,
    NMOS_DEFAULT,
    PMOS_DEFAULT,
    mos_current,
    mos_current_vec,
)
from repro.analog.sense_amp import SenseAmpBench, SenseAmpConfig
from repro.analog.solver import BatchedTransientSolver
from repro.circuits.topologies import SaTopology
from repro.errors import AnalogError, ConvergenceError


class TestMosCurrentVec:
    @pytest.mark.parametrize("channel,base", [
        ("nmos", NMOS_DEFAULT), ("pmos", PMOS_DEFAULT),
    ])
    def test_matches_scalar_bitwise(self, channel, base):
        """Vectorized device evaluation is the same IEEE expression."""
        rng = np.random.default_rng(42)
        n = 128
        kp = base.kp * rng.uniform(0.7, 1.3, size=n)
        vt = base.vt + rng.normal(0.0, 0.08, size=n)
        lam = np.full(n, base.lam)
        vg = rng.uniform(-0.5, 2.5, size=n)
        vd = rng.uniform(-0.5, 2.5, size=n)
        vs = rng.uniform(-0.5, 2.5, size=n)
        vec = mos_current_vec(channel, kp, vt, lam, 3.0, vg, vd, vs)
        for i in range(n):
            model = MosModel(channel, float(kp[i]), float(vt[i]), float(lam[i]))
            assert vec[i] == mos_current(model, 3.0, vg[i], vd[i], vs[i])

    def test_shared_scalar_params_broadcast(self):
        vg = np.array([0.0, 0.8, 1.6])
        vd = np.array([1.1, 1.1, 1.1])
        vs = np.zeros(3)
        vec = mos_current_vec(
            "nmos", NMOS_DEFAULT.kp, NMOS_DEFAULT.vt, NMOS_DEFAULT.lam,
            2.0, vg, vd, vs,
        )
        for i in range(3):
            assert vec[i] == mos_current(NMOS_DEFAULT, 2.0, vg[i], vd[i], vs[i])


def _outcomes_identical(batched, scalar):
    """Bit-identity of two ActivationOutcomes, traces included."""
    if batched.data_sensed != scalar.data_sensed:
        return False
    if not np.array_equal(batched.result.time_ns, scalar.result.time_ns):
        return False
    return all(
        np.array_equal(batched.result.voltages[net], scalar.result.voltages[net])
        for net in scalar.result.voltages
    )


class TestRunBatchBitIdentity:
    def test_single_instance_matches_scalar_run(self):
        """N=1 regression: batching one instance changes nothing."""
        bench = SenseAmpBench()
        scalar = bench.run(data=1, vt_mismatch=0.03)
        (batched,) = bench.run_batch(1, [0.03])
        assert _outcomes_identical(batched, scalar)
        assert batched.bl_final == scalar.bl_final
        assert batched.blb_final == scalar.blb_final

    def test_zero_mismatch_is_bit_exact(self):
        """Shifting a threshold by +0.0/2 is a no-op, so the nominal
        instance of a batch reproduces the unshifted scalar run."""
        bench = SenseAmpBench()
        (batched,) = bench.run_batch(1, [0.0])
        scalar = bench.run(data=1, vt_mismatch=0.0)
        assert _outcomes_identical(batched, scalar)

    @pytest.mark.parametrize("topology", [SaTopology.CLASSIC, SaTopology.OCSA])
    def test_every_instance_matches_its_scalar_run(self, topology):
        """The property the Monte-Carlo engine rests on, both topologies."""
        rng = np.random.default_rng(7)
        mismatches = [float(m) for m in rng.normal(0.0, 0.06, size=4)]
        bench = SenseAmpBench(SenseAmpConfig(topology=topology))
        batched = bench.run_batch(0, mismatches)
        assert len(batched) == len(mismatches)
        for out, mismatch in zip(batched, mismatches):
            scalar = bench.run(data=0, vt_mismatch=mismatch)
            assert _outcomes_identical(out, scalar)

    def test_run_batch_validates_inputs(self):
        bench = SenseAmpBench()
        with pytest.raises(AnalogError, match="data must be 0 or 1"):
            bench.run_batch(2, [0.0])
        with pytest.raises(AnalogError, match="at least one mismatch"):
            bench.run_batch(1, [])


class TestBatchedSolverConstruction:
    def _circuit(self):
        return SenseAmpBench().build_circuit()

    def test_ambiguous_batch_rejected(self):
        with pytest.raises(AnalogError, match="ambiguous"):
            BatchedTransientSolver(self._circuit())

    def test_empty_model_sequence_rejected(self):
        with pytest.raises(AnalogError, match="empty model sequence"):
            BatchedTransientSolver(self._circuit(), device_models={"n2": []})

    def test_inconsistent_sequence_lengths_rejected(self):
        models = {
            "n1": [NMOS_DEFAULT],
            "n2": [NMOS_DEFAULT, NMOS_DEFAULT],
        }
        with pytest.raises(AnalogError, match="inconsistent batch sizes"):
            BatchedTransientSolver(self._circuit(), device_models=models)

    def test_batch_conflicting_with_sequences_rejected(self):
        with pytest.raises(AnalogError, match="conflicts"):
            BatchedTransientSolver(
                self._circuit(), device_models={"n2": [NMOS_DEFAULT]}, batch=3
            )

    def test_instance_models_round_trip(self):
        shifted = [NMOS_DEFAULT.with_vt_shift(0.01), NMOS_DEFAULT.with_vt_shift(-0.01)]
        solver = BatchedTransientSolver(
            self._circuit(), device_models={"n2": shifted, "p1": PMOS_DEFAULT}
        )
        assert solver.batch == 2
        assert solver.instance_models(1) == {"n2": shifted[1], "p1": PMOS_DEFAULT}
        reference = solver.reference_solver(0)
        assert reference.device_models == {"n2": shifted[0], "p1": PMOS_DEFAULT}


class TestConvergenceFailure:
    def test_convergence_error_names_instances(self):
        """A starved Newton loop reports *which* batch instances failed."""
        bench = SenseAmpBench()
        with pytest.raises(ConvergenceError) as excinfo:
            bench.run_batch(1, [0.0, 0.02], max_newton=1)
        instances = excinfo.value.instances
        assert instances and all(isinstance(i, int) for i in instances)
        assert set(instances) <= {0, 1}
