"""Appendix B overhead calculator (Table II, Fig 14, Observations 1–2)."""

import pytest

from repro.core.chips import CHIPS, chip
from repro.core.overheads import (
    audit,
    fig14_breakdown,
    isolation_eff_length,
    overhead_error,
    paper_overhead_fraction,
    porting_cost,
    table2_rows,
    observation1_charm_vendor_spread,
    observation2_biggest_port_gain,
)
from repro.core.papers import PAPERS, paper
from repro.layout.elements import TransistorKind

#: Paper Table II values (error, porting) as x-factors; None = N/A.
TABLE2_TARGETS = {
    "charm": (None, 0.29),
    "rb_dec": (None, -0.25),
    "ambit": (None, 68.0),
    "dracc": (35.0, 34.0),
    "graphide": (54.0, 52.0),
    "inmem_lowcost": (70.0, 67.0),
    "elp2im": (None, 90.0),
    "clr_dram": (22.0, 21.0),
    "simdram": (70.0, 67.0),
    "nov_dram": (0.49, 0.001),
    "pf_dram": (0.35, -0.01),
    "rega": (8.0, 7.0),
    "cooldram": (175.0, 168.0),
}


class TestIsolationSizing:
    def test_ocsa_chips_use_their_own_iso(self):
        a4 = chip("A4")
        assert isolation_eff_length(a4) == a4.transistor(TransistorKind.ISOLATION).eff_l

    def test_classic_chips_scale_by_feature(self):
        """§VI-C: scale the average dimensions to the chip values."""
        c4 = chip("C4")
        b4 = chip("B4")
        ratio = isolation_eff_length(b4) / isolation_eff_length(c4)
        assert ratio == pytest.approx(
            b4.geometry.feature_nm / c4.geometry.feature_nm, rel=1e-6
        )


class TestPerChipFractions:
    def test_i1_papers_cost_most_of_the_chip(self):
        cool = paper("cooldram")
        for c in CHIPS.values():
            frac = paper_overhead_fraction(cool, c)
            assert 0.3 < frac < 0.9, c.chip_id

    def test_transistor_papers_cost_single_digits(self):
        rb = paper("rb_dec")
        for c in CHIPS.values():
            assert paper_overhead_fraction(rb, c) < 0.02

    def test_rega_vendor_a_exemption(self):
        """Appendix A: REGA's new wires fit in A-chips' M2 slack."""
        rega = paper("rega")
        assert paper_overhead_fraction(rega, chip("A4")) < 0.05
        assert paper_overhead_fraction(rega, chip("C4")) > 0.1


class TestTable2:
    @pytest.mark.parametrize("key", list(TABLE2_TARGETS))
    def test_error_matches_paper(self, key):
        target_err, _target_port = TABLE2_TARGETS[key]
        err = overhead_error(paper(key))
        if target_err is None:
            assert err is None
        else:
            assert err == pytest.approx(target_err, rel=0.4), key

    @pytest.mark.parametrize("key", list(TABLE2_TARGETS))
    def test_porting_direction_matches_paper(self, key):
        """Porting costs match the paper in sign and order of magnitude
        (absolute values depend on the synthetic geometry)."""
        _err, target_port = TABLE2_TARGETS[key]
        port = porting_cost(paper(key))
        if abs(target_port) >= 10:
            assert port == pytest.approx(target_port, rel=0.45), key
        elif target_port <= 0:
            assert port < 0.25, key
        else:
            assert -0.5 < port < 2 * target_port + 1.0, key

    def test_rows_complete_and_ordered(self):
        rows = table2_rows()
        assert [r.paper.key for r in rows] == list(PAPERS)
        for row in rows:
            assert row.porting_str.endswith("x")
            assert set(row.per_chip) == set(CHIPS)

    def test_eight_papers_above_20x(self):
        """§III: 8 of 13 papers exceed 20x error/porting cost."""
        rows = table2_rows()
        big = [
            r for r in rows
            if (r.overhead_error or 0) > 20 or r.porting_cost > 20
        ]
        assert len(big) == 8

    def test_cooldram_is_the_extreme_case(self):
        rows = {r.paper.key: r for r in table2_rows()}
        worst = max(rows.values(), key=lambda r: r.overhead_error or -1)
        assert worst.paper.key == "cooldram"
        assert worst.overhead_error == pytest.approx(175, rel=0.1)


class TestFig14:
    def test_huge_papers_omitted(self):
        breakdown = fig14_breakdown(threshold=10.0)
        assert "CoolDRAM" not in breakdown
        assert "SIMDRAM" not in breakdown

    def test_small_papers_present_per_chip(self):
        breakdown = fig14_breakdown()
        assert "CHARM" in breakdown
        assert "R.B. DEC." in breakdown
        assert set(breakdown["CHARM"]) == set(CHIPS)

    def test_vendor_variation_exists(self):
        """Observation 1: overheads vary across vendors."""
        breakdown = fig14_breakdown()
        for title, per_chip in breakdown.items():
            values = list(per_chip.values())
            assert max(values) > min(values)


class TestObservations:
    def test_observation1_spread_positive(self):
        assert observation1_charm_vendor_spread() > 0

    def test_observation2_rb_dec_on_a5(self):
        """'The biggest variation is for [87] (-0.47x on A5)'."""
        title, chip_id, factor = observation2_biggest_port_gain()
        assert title == "R.B. DEC."
        assert chip_id == "A5"
        assert factor == pytest.approx(-0.47, abs=0.05)


class TestAudit:
    def test_audit_result_strings(self):
        result = audit(paper("charm"))
        assert result.error_str == "N/A"
        assert result.porting_str.endswith("x")
