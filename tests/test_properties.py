"""Property-based tests over core invariants (hypothesis).

These complement the example-based suites: they exercise the geometric,
electrical and combinatorial kernels over generated inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analog.devices import NMOS_DEFAULT, PMOS_DEFAULT, mos_current
from repro.analog.solver import Waveform
from repro.circuits.matching import identify_topology
from repro.circuits.netlist import Circuit, Device
from repro.circuits.topologies import SaSizes, build_classic_sa, build_ocsa
from repro.layout.geometry import Rect
from repro.pipeline.denoise import chambolle_tv, _divergence, _gradient
from repro.pipeline.register import align_pair, apply_shift
from repro.pipeline.segment import otsu_threshold

coord = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)
size = st.floats(min_value=1.0, max_value=1e4, allow_nan=False)


class TestGeometryProperties:
    @given(coord, coord, size, size, coord, coord)
    def test_translation_preserves_measure(self, x, y, w, h, dx, dy):
        r = Rect.from_center(x, y, w, h)
        moved = r.translated(dx, dy)
        assert moved.width == pytest.approx(r.width)
        assert moved.height == pytest.approx(r.height)
        assert moved.area == pytest.approx(r.area)

    @given(coord, coord, size, size, st.floats(min_value=0, max_value=100))
    def test_inflation_grows_area(self, x, y, w, h, margin):
        r = Rect.from_center(x, y, w, h)
        grown = r.inflated(margin)
        assert grown.area >= r.area
        assert grown.contains_rect(r)

    @given(coord, coord, size, size)
    def test_self_intersection_is_identity(self, x, y, w, h):
        r = Rect.from_center(x, y, w, h)
        assert r.intersection(r) == r
        assert r.gap_to(r) == 0.0


class TestDeviceProperties:
    vg = st.floats(min_value=-2.0, max_value=2.5, allow_nan=False)
    v = st.floats(min_value=-1.5, max_value=1.5, allow_nan=False)
    wl = st.floats(min_value=0.2, max_value=10.0, allow_nan=False)

    @given(vg, v, v, wl)
    def test_nmos_current_sign_follows_vds(self, vg, vd, vs, wl):
        i = mos_current(NMOS_DEFAULT, wl, vg, vd, vs)
        if vd > vs:
            assert i >= 0
        elif vd < vs:
            assert i <= 0

    @given(vg, v, v, wl)
    def test_pmos_current_sign_opposes_vds(self, vg, vd, vs, wl):
        """PMOS current (d→s) is negative when the device pulls up."""
        i = mos_current(PMOS_DEFAULT, wl, vg, vd, vs)
        if vd > vs:
            assert i >= 0 or abs(i) < 1e-12 or True  # direction mirrored below
        # The fundamental invariant: antisymmetry.
        rev = mos_current(PMOS_DEFAULT, wl, vg, vs, vd)
        assert i == pytest.approx(-rev, rel=1e-9, abs=1e-18)

    @given(vg, v, wl)
    def test_channel_current_scales_linearly_with_wl(self, vg, vd, wl):
        """The square-law channel term is ∝ W/L (the fixed sub-threshold
        leak is not, so it is subtracted out)."""
        from repro.analog.devices import GLEAK

        leak = GLEAK * abs(vd)
        base = mos_current(NMOS_DEFAULT, wl, vg, abs(vd), 0.0) - leak
        scaled = mos_current(NMOS_DEFAULT, wl * 2.0, vg, abs(vd), 0.0) - leak
        assert scaled == pytest.approx(2.0 * base, rel=1e-9, abs=1e-18)


class TestWaveformProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=-2, max_value=2, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        ),
        st.floats(min_value=-10, max_value=110, allow_nan=False),
    )
    def test_interpolation_within_envelope(self, points, t):
        points = sorted(points, key=lambda p: p[0])
        w = Waveform(tuple(points))
        values = [v for _t, v in points]
        assert min(values) - 1e-9 <= w.value(t) <= max(values) + 1e-9

    @given(st.floats(min_value=0.1, max_value=50), st.floats(min_value=-3, max_value=3))
    def test_shift_commutes_with_evaluation(self, dt, t):
        w = Waveform(((1.0, 0.0), (2.0, 1.0), (5.0, 0.25)))
        assert w.shifted(dt).value(t + dt) == pytest.approx(w.value(t))


class TestTopologyProperties:
    sizes = st.builds(
        SaSizes,
        nsa_w=st.floats(min_value=80, max_value=200),
        psa_w=st.floats(min_value=40, max_value=79),
        precharge_w=st.floats(min_value=30, max_value=120),
    )

    @given(sizes)
    @settings(max_examples=20, deadline=None)
    def test_classic_always_identifies(self, sizes):
        result = identify_topology(build_classic_sa(sizes))
        assert result.topology.value == "classic" and result.exact

    @given(sizes)
    @settings(max_examples=20, deadline=None)
    def test_ocsa_always_identifies(self, sizes):
        result = identify_topology(build_ocsa(sizes))
        assert result.topology.value == "ocsa" and result.exact

    @given(st.permutations(list(range(9))))
    @settings(max_examples=15, deadline=None)
    def test_device_order_irrelevant(self, order):
        base = build_classic_sa()
        devices = list(base)
        shuffled = Circuit("shuffled")
        for idx in order:
            d = devices[idx]
            shuffled.add(Device(d.name, d.dtype, dict(d.nets), dict(d.params)))
        result = identify_topology(shuffled)
        assert result.topology.value == "classic" and result.exact


class TestPipelineProperties:
    images = st.integers(min_value=0, max_value=2**32 - 1)

    @given(images)
    @settings(max_examples=15, deadline=None)
    def test_tv_never_increases_total_variation(self, seed):
        rng = np.random.default_rng(seed)
        img = rng.random((24, 24))
        out = chambolle_tv(img, weight=0.1, iterations=30)

        def tv(u):
            gx, gy = _gradient(u)
            return float(np.sqrt(gx * gx + gy * gy).sum())

        assert tv(out) <= tv(img) + 1e-9

    @given(images, st.integers(min_value=-3, max_value=3), st.integers(min_value=-3, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_alignment_inverts_known_shifts(self, seed, dx, dz):
        rng = np.random.default_rng(seed)
        base = np.kron(rng.random((10, 6)), np.ones((8, 8)))
        moved = apply_shift(base.copy(), dx, dz)
        rec = align_pair(base, moved, search_px=4)
        assert rec == (-dx, -dz)

    @given(
        st.floats(min_value=0.02, max_value=0.4),
        st.floats(min_value=0.6, max_value=0.98),
        images,
    )
    @settings(max_examples=15, deadline=None)
    def test_otsu_separates_two_modes(self, lo, hi, seed):
        rng = np.random.default_rng(seed)
        img = np.where(rng.random((48, 48)) > 0.5, hi, lo)
        t = otsu_threshold(img)
        assert lo < t < hi

    @given(images)
    @settings(max_examples=10, deadline=None)
    def test_gradient_divergence_adjoint(self, seed):
        rng = np.random.default_rng(seed)
        u = rng.random((12, 17))
        px_ = rng.random((12, 17))
        py_ = rng.random((12, 17))
        gx, gy = _gradient(u)
        lhs = float((gx * px_ + gy * py_).sum())
        rhs = -float((u * _divergence(px_, py_)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)
