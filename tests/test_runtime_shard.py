"""Slice-sharded stage execution: batching, determinism, backpressure.

The contract under test is the one the campaign runtime relies on: for
*every* shard configuration (batch size, ordering, worker count,
in-flight ceiling) the sharded output is bit-identical — ``pickle.dumps``
equal, not merely ``allclose`` — to the serial path.  Worker pools here
are tiny (2 processes) so the suite stays honest on single-core CI.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PipelineError
from repro.faults import FaultInjector, FaultPlan
from repro.imaging import FibSemCampaign, SemParameters
from repro.imaging.fib import acquire_stack
from repro.imaging.voxel import voxelize
from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer
from repro.pipeline import PipelineConfig, ShardPlan
from repro.pipeline.denoise import denoise_stack
from repro.pipeline.stack import qc_stack
from repro.runtime import (
    ChipJob,
    payload_nbytes,
    run_campaign,
    shard_map,
    shutdown_shard_pools,
)
from repro.layout import SaRegionSpec


def _plan(**kwargs) -> ShardPlan:
    """An engaged two-worker plan (explicit workers: no campaign here)."""
    kwargs.setdefault("slices", True)
    kwargs.setdefault("workers", 2)
    return ShardPlan(**kwargs)


def _scale(batch: list[np.ndarray]) -> list[np.ndarray]:
    """Picklable per-item batch function for shard_map tests."""
    return [a * 2.0 + 1.0 for a in batch]


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    """Shut shard pools down after the module so workers don't linger."""
    yield
    shutdown_shard_pools()


@pytest.fixture(scope="module")
def small_volume(request):
    cell = request.getfixturevalue("classic_cell")
    return voxelize(cell, voxel_nm=8.0)


@pytest.fixture(scope="module")
def fib_campaign():
    return FibSemCampaign(slice_thickness_nm=16.0, sem=SemParameters())


@pytest.fixture(scope="module")
def serial_stack(small_volume, fib_campaign):
    return acquire_stack(small_volume, fib_campaign)


class TestShardPlanValidation:
    def test_zero_batch_rejected(self):
        with pytest.raises(PipelineError):
            ShardPlan(batch=0)

    def test_unknown_ordering_rejected(self):
        with pytest.raises(PipelineError):
            ShardPlan(ordering="random")

    def test_zero_inflight_rejected(self):
        with pytest.raises(PipelineError):
            ShardPlan(max_inflight_bytes=0)

    def test_zero_workers_rejected(self):
        with pytest.raises(PipelineError):
            ShardPlan(workers=0)


class TestShardPlanBatching:
    def test_engaged_needs_slices_workers_and_items(self):
        assert not ShardPlan().engaged(16)                       # slices off
        assert not ShardPlan(slices=True).engaged(16)            # 1 worker
        assert not ShardPlan(slices=True, workers=4).engaged(1)  # 1 item
        assert ShardPlan(slices=True, workers=4).engaged(2)

    def test_contiguous_batches_are_runs(self):
        plan = ShardPlan(slices=True, batch=3)
        assert plan.batches(8) == [(0, 1, 2), (3, 4, 5), (6, 7)]

    def test_striped_batches_round_robin(self):
        plan = ShardPlan(slices=True, batch=3, ordering="striped")
        assert plan.batches(8) == [(0, 3, 6), (1, 4, 7), (2, 5)]

    def test_auto_batch_is_two_per_worker(self):
        plan = ShardPlan(slices=True, workers=4)
        # 32 slices / (2 * 4 workers) = 4 per batch.
        assert plan.batch_size(32) == 4
        assert len(plan.batches(32)) == 8

    @given(
        n=st.integers(min_value=0, max_value=64),
        batch=st.one_of(st.none(), st.integers(min_value=1, max_value=16)),
        ordering=st.sampled_from(["contiguous", "striped"]),
        workers=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
    )
    @settings(max_examples=100, deadline=None)
    def test_batches_partition_every_stack(self, n, batch, ordering, workers):
        """Batches are a disjoint, exhaustive partition of range(n)."""
        plan = ShardPlan(
            slices=True, batch=batch, ordering=ordering, workers=workers
        )
        batches = plan.batches(n)
        flat = [i for b in batches for i in b]
        assert sorted(flat) == list(range(n))
        assert len(flat) == len(set(flat))
        assert all(len(b) >= 1 for b in batches)


class TestShardMap:
    def _items(self, n=7, seed=3):
        rng = np.random.default_rng(seed)
        return [rng.random((13, 11)).astype(np.float32) for _ in range(n)]

    def test_not_engaged_runs_inline(self):
        items = self._items()
        out = shard_map("t", _scale, items, ShardPlan(slices=True, batch=2))
        assert pickle.dumps(out) == pickle.dumps(_scale(items))

    @pytest.mark.parametrize("plan_kwargs", [
        {},                                    # auto batch, contiguous
        {"batch": 1},                          # one slice per batch
        {"batch": 3, "ordering": "striped"},   # round-robin
        {"max_inflight_bytes": 1},             # maximal backpressure
    ])
    def test_pool_output_bit_identical(self, plan_kwargs):
        """Sharded results match the serial bytes for every plan shape."""
        items = self._items()
        out = shard_map("t", _scale, items, _plan(**plan_kwargs))
        assert pickle.dumps(out) == pickle.dumps(_scale(items))

    def test_empty_items(self):
        assert shard_map("t", _scale, [], _plan()) == []

    def test_backpressure_counter_increments(self):
        reg = MetricsRegistry()
        items = self._items(n=6)
        with use_metrics(reg):
            shard_map("t", _scale, items, _plan(batch=1, max_inflight_bytes=1))
        assert reg.counter("repro_shard_backpressure_total", stage="t").value > 0
        assert reg.counter("repro_shard_batches_total", stage="t").value == 6
        assert reg.counter("repro_shard_slices_total", stage="t").value == 6
        assert reg.counter("repro_shard_bytes_total", stage="t").value == sum(
            payload_nbytes(i) for i in items
        )

    def test_shard_spans_nest_under_stage_span(self):
        tracer = Tracer()
        items = self._items(n=4)
        with use_tracer(tracer):
            with tracer.span("denoise", kind="stage"):
                shard_map("t", _scale, items, _plan(batch=2))
        spans = tracer.finished_spans()
        (stage_span,) = [s for s in spans if s.kind == "stage"]
        shard_spans = [s for s in spans if s.kind == "shard"]
        assert len(shard_spans) == 2
        assert all(s.parent_id == stage_span.span_id for s in shard_spans)
        assert all(s.attrs["stage"] == "t" for s in shard_spans)

    def test_mismatched_batch_length_raises(self):
        with pytest.raises(RuntimeError, match="returned"):
            shard_map("t", _drop_one, self._items(n=4), _plan(batch=2))


def _drop_one(batch: list[np.ndarray]) -> list[np.ndarray]:
    """Broken batch fn: returns one result short (length-check test)."""
    return [a * 2.0 for a in batch[1:]]


class _Unpicklable:
    """Sentinel whose serialization paths all raise — if payload_nbytes
    ever touches pickle (or repr/str), the estimate blows up."""

    def __reduce__(self):
        raise RuntimeError("payload_nbytes must not serialize items")

    def __repr__(self):  # pragma: no cover - only hit on a regression
        raise RuntimeError("payload_nbytes must not render items")


class TestPayloadNbytes:
    def test_arrays_report_nbytes_exactly(self):
        arr = np.zeros((7, 9), dtype=np.float64)
        assert payload_nbytes(arr) == arr.nbytes

    def test_buffers_report_length(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes(bytearray(10)) == 10
        assert payload_nbytes(memoryview(b"xyz")) == 3

    def test_containers_sum_recursively(self):
        arr = np.zeros(16, dtype=np.float32)
        assert payload_nbytes([arr, arr]) == 2 * arr.nbytes + 64
        assert payload_nbytes({"a": arr}) == arr.nbytes + 64
        assert payload_nbytes((arr,)) == arr.nbytes + 64

    def test_dataclass_fields_are_walked(self):
        import dataclasses as dc

        @dc.dataclass(frozen=True)
        class Shot:
            image: np.ndarray
            index: int

        arr = np.zeros((4, 4), dtype=np.float64)
        assert payload_nbytes(Shot(arr, 3)) >= arr.nbytes

    def test_never_serializes_the_item(self):
        """Regression: the estimate must stay pickle-free on the hot
        path — an object whose ``__reduce__`` raises still gets a
        nominal size instead of an exception."""
        assert payload_nbytes(_Unpicklable()) == 256
        assert payload_nbytes([_Unpicklable(), _Unpicklable()]) == 2 * 256 + 64
        assert payload_nbytes({"bad": _Unpicklable()}) == 256 + 64

    def test_fake_nbytes_attribute_is_type_checked(self):
        """A stray non-integer ``nbytes`` attribute must not poison the
        sum (regression for duck-typed objects with nbytes properties)."""

        class Odd:
            nbytes = "not a number"

        assert payload_nbytes(Odd()) == 256


class TestShardedStages:
    """The three per-slice stages, sharded vs serial, byte for byte."""

    @pytest.mark.parametrize("plan_kwargs", [
        {},
        {"batch": 2, "ordering": "striped"},
    ])
    def test_acquire_bit_identical(
        self, small_volume, fib_campaign, serial_stack, plan_kwargs
    ):
        sharded = acquire_stack(
            small_volume, fib_campaign, shard=_plan(**plan_kwargs)
        )
        assert pickle.dumps(sharded) == pickle.dumps(serial_stack)

    def test_acquire_active_fault_plan_falls_back(
        self, small_volume, fib_campaign
    ):
        """A live fault plan forces the serial path (cross-slice state)
        and the fallback is counted — the output still matches serial."""
        plan = FaultPlan(seed=7, drop_rate=0.3)
        serial = acquire_stack(
            small_volume, fib_campaign, injector=FaultInjector(plan)
        )
        reg = MetricsRegistry()
        with use_metrics(reg):
            sharded = acquire_stack(
                small_volume, fib_campaign,
                injector=FaultInjector(plan), shard=_plan(),
            )
        counter = reg.counter(
            "repro_shard_fallback_total", stage="acquire",
            reason="active-fault-plan",
        )
        assert counter.value == 1
        assert pickle.dumps(sharded) == pickle.dumps(serial)

    def test_acquire_inert_fault_plan_still_shards(
        self, small_volume, fib_campaign, serial_stack
    ):
        """An injector with nothing to inject must not block sharding."""
        reg = MetricsRegistry()
        with use_metrics(reg):
            sharded = acquire_stack(
                small_volume, fib_campaign,
                injector=FaultInjector(FaultPlan(seed=7)), shard=_plan(),
            )
        assert reg.counter("repro_shard_batches_total", stage="acquire").value > 0
        assert pickle.dumps(sharded) == pickle.dumps(serial_stack)

    @given(
        batch=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
        ordering=st.sampled_from(["contiguous", "striped"]),
        inflight=st.sampled_from([1, 256 * 1024 * 1024]),
    )
    @settings(max_examples=8, deadline=None)
    def test_denoise_bit_identical_for_every_plan(
        self, serial_stack, batch, ordering, inflight
    ):
        images = serial_stack.images[:6]
        serial = denoise_stack(images, method="chambolle", iterations=8)
        sharded = denoise_stack(
            images, method="chambolle", iterations=8,
            shard=_plan(batch=batch, ordering=ordering,
                        max_inflight_bytes=inflight),
        )
        assert pickle.dumps(sharded) == pickle.dumps(serial)

    def test_qc_bit_identical(self, serial_stack):
        serial = qc_stack(
            serial_stack.images, true_drift_px=serial_stack.true_drift_px
        )
        sharded = qc_stack(
            serial_stack.images, true_drift_px=serial_stack.true_drift_px,
            shard=_plan(batch=2),
        )
        assert pickle.dumps(sharded) == pickle.dumps(serial)


FAST = PipelineConfig(denoise_iterations=10, align_search_px=2, align_baselines=(1, 2))


class TestShardedCampaign:
    """End to end: a sharded single-chip campaign equals ``workers=1``."""

    @pytest.fixture(scope="class")
    def job(self):
        return ChipJob(
            name="solo",
            spec=SaRegionSpec(name="rt_classic", topology="classic", n_pairs=1),
            campaign=FibSemCampaign(
                slice_thickness_nm=12.0, sem=SemParameters(dwell_time_us=6.0)
            ),
        )

    @pytest.fixture(scope="class")
    def serial_bytes(self, job):
        report = run_campaign([job], config=FAST, workers=1)
        return pickle.dumps(report.results())

    def test_sharded_single_chip_matches_serial(self, job, serial_bytes):
        sharded = run_campaign(
            [job],
            config=FAST.replaced(shard=ShardPlan(slices=True, workers=2)),
            workers=1,
        )
        assert pickle.dumps(sharded.results()) == serial_bytes

    def test_sharded_striped_small_batches_matches_serial(self, job, serial_bytes):
        sharded = run_campaign(
            [job],
            config=FAST.replaced(shard=ShardPlan(
                slices=True, workers=2, batch=1, ordering="striped"
            )),
            workers=1,
        )
        assert pickle.dumps(sharded.results()) == serial_bytes
