"""The campaign runtime: fan-out determinism and stage caching.

The campaigns here use deliberately cheap pipeline settings (fewer TV
iterations, a smaller MI search window, 1-pair regions) — orchestration
behaviour is what is under test; full-fidelity numbers are covered by the
end-to-end workflow tests and benches.
"""

import dataclasses
import pickle

import pytest

from repro.circuits.topologies import SaTopology
from repro.errors import CampaignError
from repro.faults import FaultPlan
from repro.imaging import FibSemCampaign, SemParameters
from repro.layout import SaRegionSpec
from repro.pipeline import PipelineConfig
from repro.runtime import CampaignReport, ChipJob, ResiliencePolicy, run_campaign

FAST = PipelineConfig(denoise_iterations=10, align_search_px=2, align_baselines=(1, 2))


def _jobs() -> list[ChipJob]:
    campaign = FibSemCampaign(
        slice_thickness_nm=12.0, sem=SemParameters(dwell_time_us=6.0)
    )
    return [
        ChipJob(name="fab-classic",
                spec=SaRegionSpec(name="rt_classic", topology="classic", n_pairs=1),
                campaign=campaign),
        ChipJob(name="fab-ocsa",
                spec=SaRegionSpec(name="rt_ocsa", topology="ocsa", n_pairs=1),
                campaign=campaign),
    ]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("stage-cache")


@pytest.fixture(scope="module")
def serial_report(cache_dir):
    """Cold serial run of the 2-chip campaign, populating the cache."""
    return run_campaign(_jobs(), config=FAST, workers=1, cache_dir=cache_dir)


class TestCampaignResults:
    def test_topologies_recovered(self, serial_report):
        assert serial_report.result("fab-classic").topology is SaTopology.CLASSIC
        assert serial_report.result("fab-ocsa").topology is SaTopology.OCSA

    def test_validation_attached(self, serial_report):
        for result in serial_report.results().values():
            assert result.validation is not None and result.validation.complete

    def test_job_order_preserved(self, serial_report):
        assert list(serial_report.chips) == ["fab-classic", "fab-ocsa"]

    def test_stage_metrics_present(self, serial_report):
        run = serial_report.chips["fab-ocsa"]
        assert [s.stage for s in run.stages] == [
            "layout", "voxelize", "acquire", "denoise", "align", "assemble", "reveng",
        ]
        assert all(s.seconds >= 0 for s in run.stages)
        assert all(s.payload_bytes > 0 for s in run.stages)

    def test_pipeline_notes_populated(self, serial_report):
        notes = serial_report.result("fab-ocsa").pipeline_notes
        for key in ("alignment_residual_fraction", "slices", "beam_time_hours",
                    "devices_extracted", "lanes_matched"):
            assert key in notes


class TestParallelEquivalence:
    def test_parallel_matches_serial(self, serial_report):
        """Process-pool fan-out is bit-identical to the serial path."""
        parallel = run_campaign(_jobs(), config=FAST, workers=2, cache_dir=None)
        assert parallel.workers == 2
        for name in ("fab-classic", "fab-ocsa"):
            a, b = serial_report.result(name), parallel.result(name)
            assert a.topology is b.topology
            assert a.lanes_matched == b.lanes_matched
            assert a.pipeline_notes == b.pipeline_notes
            assert pickle.dumps(a.measurements) == pickle.dumps(b.measurements)
            assert a.validation.max_relative_error() == b.validation.max_relative_error()


class TestStageCacheBehaviour:
    def test_cold_run_misses_everything(self, serial_report):
        assert serial_report.cache_hits == 0
        assert serial_report.cache_misses == 14  # 7 stages x 2 chips

    def test_warm_run_executes_nothing(self, serial_report, cache_dir):
        warm = run_campaign(_jobs(), config=FAST, workers=1, cache_dir=cache_dir)
        assert warm.cache_misses == 0
        assert warm.stages_executed == 0
        # Upstream imaging/pipeline stages were skipped outright: only the
        # final reveng entry is ever loaded.
        for run in warm.chips.values():
            dispositions = {s.stage: s.disposition for s in run.stages}
            assert dispositions["reveng"] == "hit"
            for stage in ("layout", "voxelize", "acquire", "denoise", "align", "assemble"):
                assert dispositions[stage] == "skip"
        # ... and the cached results equal the originals.
        for name in ("fab-classic", "fab-ocsa"):
            assert pickle.dumps(warm.result(name).measurements) == \
                pickle.dumps(serial_report.result(name).measurements)

    def test_segmentation_change_reruns_only_reveng(self, serial_report, cache_dir):
        """Changing a final-stage parameter re-executes only that stage."""
        tweaked = FAST.replaced(segment_tolerance=0.45)
        report = run_campaign(_jobs(), config=tweaked, workers=1, cache_dir=cache_dir)
        for run in report.chips.values():
            assert run.stages_executed == ["reveng"]

    def test_chunk_workers_do_not_change_cache_keys(self, serial_report, cache_dir):
        """chunk_workers is an execution knob: same results, same cache."""
        threaded = FAST.replaced(chunk_workers=2)
        report = run_campaign(_jobs(), config=threaded, workers=1, cache_dir=cache_dir)
        assert report.cache_misses == 0


class TestJobValidation:
    def test_empty_campaign_rejected(self):
        with pytest.raises(CampaignError):
            run_campaign([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CampaignError, match="duplicate"):
            run_campaign(_jobs() + _jobs())

    def test_unnamed_job_rejected(self):
        with pytest.raises(CampaignError):
            ChipJob(name="", spec=SaRegionSpec(topology="classic"))

    def test_roi_requires_mat_context(self):
        with pytest.raises(CampaignError, match="mat_rows"):
            ChipJob(name="x", spec=SaRegionSpec(topology="classic"), roi_margin_nm=100.0)

    def test_unknown_result_name(self, serial_report):
        with pytest.raises(CampaignError):
            serial_report.result("nope")

    def test_for_chip_builds_table1_job(self):
        job = ChipJob.for_chip("b5", n_pairs=1)
        assert job.name == "B5"
        assert job.spec.topology == "ocsa"

    def test_render_mentions_cache_dispositions(self, serial_report):
        text = serial_report.render()
        assert "reveng" in text and "run" in text
        assert "2 chips" in text


def _three_jobs(poison: FaultPlan | None = None) -> list[ChipJob]:
    """Three short-stack chips; ``poison`` lands on the middle one."""
    campaign = FibSemCampaign(sem=SemParameters(dwell_time_us=6.0))
    specs = [("res-a", "classic"), ("res-b", "ocsa"), ("res-c", "classic")]
    jobs = []
    for i, (name, topo) in enumerate(specs):
        jobs.append(ChipJob(
            name=name,
            spec=SaRegionSpec(name=name.replace("-", "_"), topology=topo, n_pairs=1),
            campaign=campaign,
            y_stop_nm=300.0,
            fault_plan=poison if i == 1 else None,
        ))
    return jobs


#: Heavy faults: dropped slices + drift spikes that QC cannot wave through,
#: so the poisoned chip exhausts its retries and is quarantined.
POISON = FaultPlan(seed=3, drop_rate=0.3, drift_spike_rate=0.2)

#: Light faults chosen (seed searched offline) so attempt 0 fails QC and
#: the single re-acquisition comes back clean — the retry-success path.
RECOVERABLE = FaultPlan(seed=1, drop_rate=0.04)


class TestFaultResilience:
    """The acceptance demo: 1 poisoned chip out of 3, siblings unharmed."""

    @pytest.fixture(scope="class")
    def clean_report(self):
        return run_campaign(_three_jobs(), config=FAST, workers=1)

    @pytest.fixture(scope="class")
    def faulty_report(self):
        return run_campaign(
            _three_jobs(POISON), config=FAST, workers=1,
            policy=ResiliencePolicy(max_retries=1),
        )

    def test_poisoned_chip_quarantined(self, faulty_report):
        assert list(faulty_report.chips) == ["res-a", "res-c"]
        assert list(faulty_report.quarantined) == ["res-b"]
        record = faulty_report.quarantined["res-b"]
        assert record.error_type == "AcquisitionError"
        assert record.stage == "acquire"
        assert record.retries == 1
        assert record.details["fault_events"]  # injected defects recorded
        assert faulty_report.degraded

    def test_siblings_bit_identical_to_fault_free_run(self, clean_report, faulty_report):
        for name in ("res-a", "res-c"):
            assert pickle.dumps(clean_report.result(name)) == \
                pickle.dumps(faulty_report.result(name))

    def test_quarantined_result_raises_with_context(self, faulty_report):
        with pytest.raises(CampaignError, match="quarantined"):
            faulty_report.result("res-b")
        assert "res-b" not in faulty_report.results()

    def test_render_shows_quarantine(self, faulty_report):
        text = faulty_report.render()
        assert "QUARANTINED" in text and "1 quarantined" in text

    def test_retry_then_success(self):
        """A recoverable plan costs one retry and completes degraded."""
        jobs = [_three_jobs(RECOVERABLE)[1]]
        report = run_campaign(
            jobs, config=FAST, workers=1, policy=ResiliencePolicy(max_retries=2)
        )
        run = report.chips["res-b"]
        assert run.retries == 1
        assert run.degraded
        assert not report.quarantined
        assert run.result.topology is SaTopology.OCSA

    def test_parallel_quarantine_matches_serial(self, faulty_report):
        parallel = run_campaign(
            _three_jobs(POISON), config=FAST, workers=3,
            policy=ResiliencePolicy(max_retries=1),
        )
        assert list(parallel.quarantined) == ["res-b"]
        assert parallel.quarantined["res-b"].message == \
            faulty_report.quarantined["res-b"].message
        for name in ("res-a", "res-c"):
            assert pickle.dumps(parallel.result(name)) == \
                pickle.dumps(faulty_report.result(name))

    def test_campaign_level_plan_derives_per_chip_seeds(self):
        plan = FaultPlan(seed=9, drop_rate=0.0)  # inert: keeps the test cheap
        jobs = _three_jobs()[:2]
        report = run_campaign(jobs, config=FAST, workers=1, fault_plan=plan)
        assert list(report.chips) == ["res-a", "res-b"]

    def test_timeout_quarantines_chip(self):
        report = run_campaign(
            _three_jobs()[:1], config=FAST, workers=1,
            policy=ResiliencePolicy(chip_timeout_s=1e-6),
        )
        assert not report.chips
        assert report.quarantined["res-a"].error_type == "StageTimeoutError"

    def test_bad_policy_rejected(self):
        with pytest.raises(CampaignError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(CampaignError):
            ResiliencePolicy(chip_timeout_s=0.0)


class TestFaultCacheKeys:
    """Fault knobs that change results must invalidate downstream keys."""

    def test_active_plan_invalidates_acquire_and_downstream(self, tmp_path):
        job = _three_jobs()[0]
        run_campaign([job], config=FAST, workers=1, cache_dir=tmp_path)
        poisoned = dataclasses.replace(job, fault_plan=RECOVERABLE)
        report = run_campaign(
            [poisoned], config=FAST, workers=1, cache_dir=tmp_path,
            policy=ResiliencePolicy(max_retries=2),
        )
        run = report.chips["res-a"]
        dispositions = {s.stage: s.disposition for s in run.stages}
        # Upstream of acquire is untouched; acquire and everything below
        # re-executes under the new fault/QC key.
        assert dispositions["layout"] == "hit"
        assert dispositions["voxelize"] == "hit"
        for stage in ("acquire", "denoise", "align", "assemble", "reveng"):
            assert dispositions[stage] == "run"

    def test_inert_plan_hits_clean_cache(self, tmp_path):
        """All-rates-zero plan keys identically to no plan at all."""
        job = _three_jobs()[0]
        run_campaign([job], config=FAST, workers=1, cache_dir=tmp_path)
        inert = dataclasses.replace(job, fault_plan=FaultPlan(seed=42))
        report = run_campaign([inert], config=FAST, workers=1, cache_dir=tmp_path)
        assert report.cache_misses == 0

    def test_different_seeds_different_keys(self, tmp_path):
        job = _three_jobs()[0]
        policy = ResiliencePolicy(max_retries=2)
        a = dataclasses.replace(job, fault_plan=RECOVERABLE)
        run_campaign([a], config=FAST, workers=1, cache_dir=tmp_path, policy=policy)
        b = dataclasses.replace(
            job, fault_plan=dataclasses.replace(RECOVERABLE, seed=RECOVERABLE.seed + 1)
        )
        report = run_campaign(
            [b], config=FAST, workers=1, cache_dir=tmp_path, policy=policy
        )
        run = report.chips["res-a"]
        assert "acquire" in run.stages_executed


class TestReportSerialization:
    """CampaignReport.to_json/from_json with an explicit schema version."""

    @pytest.fixture(scope="class")
    def faulty_report(self):
        return run_campaign(
            _three_jobs(POISON), config=FAST, workers=1,
            policy=ResiliencePolicy(max_retries=1),
        )

    def test_round_trip_preserves_telemetry(self, faulty_report):
        restored = CampaignReport.from_json(faulty_report.to_json())
        assert restored.to_json() == faulty_report.to_json()
        assert list(restored.chips) == list(faulty_report.chips)
        assert list(restored.quarantined) == ["res-b"]
        assert restored.quarantined["res-b"].retries == 1
        assert restored.degraded
        for name, run in restored.chips.items():
            assert run.result is None  # summary-only
            assert run.result_summary() == \
                faulty_report.chips[name].result_summary()
            assert [s.stage for s in run.stages] == \
                [s.stage for s in faulty_report.chips[name].stages]

    def test_schema_version_stamped(self, faulty_report):
        import json

        data = json.loads(faulty_report.to_json())
        assert data["schema_version"] == "campaign-report/3"

    def test_unknown_schema_rejected(self, faulty_report):
        import json

        data = json.loads(faulty_report.to_json())
        data["schema_version"] = "campaign-report/99"
        with pytest.raises(CampaignError, match="schema"):
            CampaignReport.from_dict(data)

    def test_malformed_json_rejected(self):
        with pytest.raises(CampaignError, match="malformed"):
            CampaignReport.from_json("{not json")
        with pytest.raises(CampaignError, match="object"):
            CampaignReport.from_json("[1, 2]")

    def test_summary_only_result_access_raises(self, faulty_report):
        restored = CampaignReport.from_json(faulty_report.to_json())
        with pytest.raises(CampaignError, match="summary-only"):
            restored.result("res-a")


class TestForChipResolution:
    """Resolution-matched assembly: for_chip must pick a voxel pitch the
    chip's acquisition can actually support (Table I regression — A4 and
    B4 previously failed topology identification because every plan was
    assembled at a fixed 6.0 nm voxel regardless of the scan pixel)."""

    def test_well_sampled_chip_assembles_at_native_pixel(self):
        # C4 scans at 5.0 nm on a 20 nm feature: 1:1 voxel, plan untouched
        job = ChipJob.for_chip("C4", n_pairs=1)
        assert job.voxel_nm == pytest.approx(5.0)
        assert job.campaign.sem.pixel_nm == pytest.approx(5.0)

    def test_b4_fine_pixel_keeps_one_to_one_voxel(self):
        # B4 scans at 3.4 nm; resampling that onto a coarser fixed grid is
        # what used to smear its cross-couple straps into neighbouring
        # actives and sever the latch during extraction
        job = ChipJob.for_chip("B4", n_pairs=1)
        assert job.voxel_nm == pytest.approx(3.4)
        assert job.campaign.sem.pixel_nm == pytest.approx(3.4)

    def test_a4_undersampled_plan_is_rescanned(self):
        # A4's survey plan (10.4 nm pixel on a 20.5 nm feature) cannot
        # resolve its own features at any voxel pitch — for_chip re-plans
        # at the feature-scaled catalog recipe instead
        job = ChipJob.for_chip("A4", n_pairs=1)
        scale = 20.5 / 18.0
        assert job.voxel_nm == pytest.approx(6.0 * scale)
        assert job.campaign.sem.pixel_nm == pytest.approx(5.0 * scale)
        assert job.campaign.slice_thickness_nm == pytest.approx(12.0)

    def test_explicit_voxel_wins(self):
        job = ChipJob.for_chip("C4", n_pairs=1, voxel_nm=7.5)
        assert job.voxel_nm == pytest.approx(7.5)
