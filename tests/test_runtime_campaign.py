"""The campaign runtime: fan-out determinism and stage caching.

The campaigns here use deliberately cheap pipeline settings (fewer TV
iterations, a smaller MI search window, 1-pair regions) — orchestration
behaviour is what is under test; full-fidelity numbers are covered by the
end-to-end workflow tests and benches.
"""

import pickle

import pytest

from repro.circuits.topologies import SaTopology
from repro.errors import CampaignError
from repro.imaging import FibSemCampaign, SemParameters
from repro.layout import SaRegionSpec
from repro.pipeline import PipelineConfig
from repro.runtime import ChipJob, run_campaign

FAST = PipelineConfig(denoise_iterations=10, align_search_px=2, align_baselines=(1, 2))


def _jobs() -> list[ChipJob]:
    campaign = FibSemCampaign(
        slice_thickness_nm=12.0, sem=SemParameters(dwell_time_us=6.0)
    )
    return [
        ChipJob(name="fab-classic",
                spec=SaRegionSpec(name="rt_classic", topology="classic", n_pairs=1),
                campaign=campaign),
        ChipJob(name="fab-ocsa",
                spec=SaRegionSpec(name="rt_ocsa", topology="ocsa", n_pairs=1),
                campaign=campaign),
    ]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("stage-cache")


@pytest.fixture(scope="module")
def serial_report(cache_dir):
    """Cold serial run of the 2-chip campaign, populating the cache."""
    return run_campaign(_jobs(), config=FAST, workers=1, cache_dir=cache_dir)


class TestCampaignResults:
    def test_topologies_recovered(self, serial_report):
        assert serial_report.result("fab-classic").topology is SaTopology.CLASSIC
        assert serial_report.result("fab-ocsa").topology is SaTopology.OCSA

    def test_validation_attached(self, serial_report):
        for result in serial_report.results().values():
            assert result.validation is not None and result.validation.complete

    def test_job_order_preserved(self, serial_report):
        assert list(serial_report.chips) == ["fab-classic", "fab-ocsa"]

    def test_stage_metrics_present(self, serial_report):
        run = serial_report.chips["fab-ocsa"]
        assert [s.stage for s in run.stages] == [
            "layout", "voxelize", "acquire", "denoise", "align", "assemble", "reveng",
        ]
        assert all(s.seconds >= 0 for s in run.stages)
        assert all(s.payload_bytes > 0 for s in run.stages)

    def test_pipeline_notes_populated(self, serial_report):
        notes = serial_report.result("fab-ocsa").pipeline_notes
        for key in ("alignment_residual_fraction", "slices", "beam_time_hours",
                    "devices_extracted", "lanes_matched"):
            assert key in notes


class TestParallelEquivalence:
    def test_parallel_matches_serial(self, serial_report):
        """Process-pool fan-out is bit-identical to the serial path."""
        parallel = run_campaign(_jobs(), config=FAST, workers=2, cache_dir=None)
        assert parallel.workers == 2
        for name in ("fab-classic", "fab-ocsa"):
            a, b = serial_report.result(name), parallel.result(name)
            assert a.topology is b.topology
            assert a.lanes_matched == b.lanes_matched
            assert a.pipeline_notes == b.pipeline_notes
            assert pickle.dumps(a.measurements) == pickle.dumps(b.measurements)
            assert a.validation.max_relative_error() == b.validation.max_relative_error()


class TestStageCacheBehaviour:
    def test_cold_run_misses_everything(self, serial_report):
        assert serial_report.cache_hits == 0
        assert serial_report.cache_misses == 14  # 7 stages x 2 chips

    def test_warm_run_executes_nothing(self, serial_report, cache_dir):
        warm = run_campaign(_jobs(), config=FAST, workers=1, cache_dir=cache_dir)
        assert warm.cache_misses == 0
        assert warm.stages_executed == 0
        # Upstream imaging/pipeline stages were skipped outright: only the
        # final reveng entry is ever loaded.
        for run in warm.chips.values():
            dispositions = {s.stage: s.disposition for s in run.stages}
            assert dispositions["reveng"] == "hit"
            for stage in ("layout", "voxelize", "acquire", "denoise", "align", "assemble"):
                assert dispositions[stage] == "skip"
        # ... and the cached results equal the originals.
        for name in ("fab-classic", "fab-ocsa"):
            assert pickle.dumps(warm.result(name).measurements) == \
                pickle.dumps(serial_report.result(name).measurements)

    def test_segmentation_change_reruns_only_reveng(self, serial_report, cache_dir):
        """Changing a final-stage parameter re-executes only that stage."""
        tweaked = FAST.replaced(segment_tolerance=0.45)
        report = run_campaign(_jobs(), config=tweaked, workers=1, cache_dir=cache_dir)
        for run in report.chips.values():
            assert run.stages_executed == ["reveng"]

    def test_chunk_workers_do_not_change_cache_keys(self, serial_report, cache_dir):
        """chunk_workers is an execution knob: same results, same cache."""
        threaded = FAST.replaced(chunk_workers=2)
        report = run_campaign(_jobs(), config=threaded, workers=1, cache_dir=cache_dir)
        assert report.cache_misses == 0


class TestJobValidation:
    def test_empty_campaign_rejected(self):
        with pytest.raises(CampaignError):
            run_campaign([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(CampaignError, match="duplicate"):
            run_campaign(_jobs() + _jobs())

    def test_unnamed_job_rejected(self):
        with pytest.raises(CampaignError):
            ChipJob(name="", spec=SaRegionSpec(topology="classic"))

    def test_roi_requires_mat_context(self):
        with pytest.raises(CampaignError, match="mat_rows"):
            ChipJob(name="x", spec=SaRegionSpec(topology="classic"), roi_margin_nm=100.0)

    def test_unknown_result_name(self, serial_report):
        with pytest.raises(CampaignError):
            serial_report.result("nope")

    def test_for_chip_builds_table1_job(self):
        job = ChipJob.for_chip("b5", n_pairs=1)
        assert job.name == "B5"
        assert job.spec.topology == "ocsa"

    def test_render_mentions_cache_dispositions(self, serial_report):
        text = serial_report.render()
        assert "reveng" in text and "run" in text
        assert "2 chips" in text
