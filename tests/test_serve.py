"""The campaign-as-a-service daemon: spec validation, queue semantics,
and the full HTTP lifecycle.

The cheap layers (spec parsing, :class:`JobQueue`) are covered
exhaustively with no daemon at all.  The expensive end-to-end section
boots ONE module-scoped :class:`ServeDaemon` and drives real campaign
jobs through it over HTTP — two concurrent jobs multiplexed onto the one
shared process pool, cross-job stage-cache reuse, per-job event streams
that terminate, mid-run cancellation, bit-identity of the daemon's
report against a one-shot run of the same spec, and the graceful drain.
Campaign payloads use the ``fast`` preset with 1-pair regions so each
job costs seconds, not minutes.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import DrainingError, QuotaError, SpecError
from repro.serve import JobQueue, ServeDaemon
from repro.serve.spec import JobSpec, canonical_report, parse_job_spec, run_job

FAST_CLASSIC = {"targets": ["classic"], "pairs": 1, "fast": True}
FAST_OCSA = {"targets": ["ocsa"], "pairs": 1, "fast": True}


def _request(url, method="GET", body=None, timeout=30.0):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


def _request_error(url, method="GET", body=None):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _request(url, method, body)
    exc = excinfo.value
    return exc.code, json.loads(exc.read().decode())


# ---------------------------------------------------------------------------
# job-spec/1 parsing


class TestSpecParsing:
    def test_minimal_campaign_spec(self):
        spec = parse_job_spec({"kind": "campaign", "spec": FAST_CLASSIC})
        assert spec.kind == "campaign"
        assert spec.tenant == "default"
        assert spec.priority == 0
        assert spec.payload["targets"] == ["classic"]

    def test_tenant_and_priority_carried(self):
        spec = parse_job_spec({
            "kind": "campaign", "tenant": "alice", "priority": 3,
            "spec": FAST_CLASSIC,
        })
        assert (spec.tenant, spec.priority) == ("alice", 3)

    def test_non_object_rejected(self):
        with pytest.raises(SpecError):
            parse_job_spec([1, 2, 3])

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpecError, match="kind"):
            parse_job_spec({"kind": "frobnicate", "spec": {}})

    def test_errors_accumulate(self):
        """One submission reports every problem, not just the first."""
        with pytest.raises(SpecError) as excinfo:
            parse_job_spec({
                "kind": "campaign",
                "spec": {"targets": ["zzz"], "pairs": -1, "bogus_knob": 1},
            })
        joined = "\n".join(excinfo.value.errors)
        assert len(excinfo.value.errors) >= 3
        assert "zzz" in joined
        assert "pairs" in joined
        assert "bogus_knob" in joined

    def test_chips_and_targets_mutually_exclusive(self):
        with pytest.raises(SpecError):
            parse_job_spec({
                "kind": "campaign",
                "spec": {"targets": ["classic"], "chips": ["A4"]},
            })

    def test_characterize_spec_parses(self):
        spec = parse_job_spec({
            "kind": "characterize",
            "spec": {"topologies": ["classic"], "corners": ["TT"],
                     "caps_ff": [90.0], "trials": 4},
        })
        assert spec.kind == "characterize"

    def test_catalog_spec_parses(self):
        spec = parse_job_spec({
            "kind": "catalog",
            "spec": {"variants": 2, "seed": 11},
        })
        assert spec.kind == "catalog"

    def test_to_dict_round_trips(self):
        doc = {"kind": "campaign", "tenant": "t", "priority": 1,
               "spec": FAST_CLASSIC}
        assert parse_job_spec(parse_job_spec(doc).to_dict()).to_dict() == \
            parse_job_spec(doc).to_dict()


# ---------------------------------------------------------------------------
# JobQueue: priority, quotas, drain


def _spec(tenant="default", priority=0):
    return JobSpec(kind="campaign", payload=dict(FAST_CLASSIC),
                   tenant=tenant, priority=priority)


class TestJobQueue:
    def test_submit_assigns_ids_and_status_schema(self):
        queue = JobQueue()
        record = queue.submit(_spec())
        assert record.state == "queued"
        status = record.status()
        assert status["schema"] == "serve-job/1"
        assert status["id"] == record.id

    def test_priority_order_then_fifo(self):
        queue = JobQueue(tenant_quota=10)
        low1 = queue.submit(_spec(priority=0))
        high = queue.submit(_spec(priority=5))
        low2 = queue.submit(_spec(priority=0))
        leased = [queue.lease(timeout=0.1).id for _ in range(3)]
        assert leased == [high.id, low1.id, low2.id]

    def test_lease_marks_running(self):
        queue = JobQueue()
        queue.submit(_spec())
        record = queue.lease(timeout=0.1)
        assert record.state == "running"
        assert record.started_s is not None

    def test_tenant_quota_enforced_per_tenant(self):
        queue = JobQueue(tenant_quota=2)
        queue.submit(_spec(tenant="alice"))
        queue.submit(_spec(tenant="alice"))
        with pytest.raises(QuotaError):
            queue.submit(_spec(tenant="alice"))
        # an unrelated tenant is not starved
        queue.submit(_spec(tenant="bob"))

    def test_quota_frees_on_terminal_state(self):
        queue = JobQueue(tenant_quota=1)
        record = queue.submit(_spec(tenant="alice"))
        queue.lease(timeout=0.1)
        queue.finish(record.id, "done")
        queue.submit(_spec(tenant="alice"))  # must not raise

    def test_cancel_queued_job_terminates_and_closes_bus(self):
        queue = JobQueue()
        record = queue.submit(_spec())
        queue.cancel(record.id)
        assert record.state == "cancelled"
        assert record.cancel_event.is_set()
        assert record.bus.closed
        assert queue.lease(timeout=0.05) is None  # skipped in the heap

    def test_cancel_running_job_only_sets_event(self):
        queue = JobQueue()
        record = queue.submit(_spec())
        queue.lease(timeout=0.1)
        queue.cancel(record.id)
        assert record.state == "running"
        assert record.cancel_event.is_set()
        assert not record.bus.closed  # the scheduler closes it at finish

    def test_drain_rejects_new_and_cancels_queued(self):
        queue = JobQueue()
        queued = queue.submit(_spec())
        dropped = queue.drain()
        assert [r.id for r in dropped] == [queued.id]
        assert queued.state == "cancelled"
        assert queued.bus.closed
        with pytest.raises(DrainingError):
            queue.submit(_spec())
        assert queue.lease(timeout=0.05) is None

    def test_finish_requires_terminal_state(self):
        queue = JobQueue()
        record = queue.submit(_spec())
        queue.lease(timeout=0.1)
        from repro.errors import ServeError
        with pytest.raises(ServeError):
            queue.finish(record.id, "running")

    def test_unknown_job_raises_key_error(self):
        with pytest.raises(KeyError):
            JobQueue().get("job-999999")


# ---------------------------------------------------------------------------
# the daemon end-to-end (one shared module-scoped instance)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    state = tmp_path_factory.mktemp("serve-state")
    instance = ServeDaemon(state, port=0, pool_workers=2, runners=2)
    instance.start()
    yield instance
    instance.stop()


def _wait_terminal(daemon, job_id, timeout=600.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, body = _request(f"{daemon.url}/jobs/{job_id}")
        status = json.loads(body)
        if status["state"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.2)
    raise AssertionError(f"job {job_id} did not terminate in {timeout}s")


class TestServeDaemon:
    def test_healthz_serving(self, daemon):
        _, body = _request(daemon.url + "/healthz")
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["state"] == "serving"

    def test_invalid_spec_rejected_with_all_errors(self, daemon):
        code, doc = _request_error(
            daemon.url + "/jobs", "POST",
            {"kind": "campaign", "spec": {"targets": ["zzz"], "bogus": 1}},
        )
        assert code == 400
        assert len(doc["errors"]) >= 2

    def test_non_json_body_rejected(self, daemon):
        req = urllib.request.Request(
            daemon.url + "/jobs", data=b"not json{", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400

    def test_unknown_job_404(self, daemon):
        code, _ = _request_error(daemon.url + "/jobs/job-424242")
        assert code == 404

    def test_concurrent_jobs_share_pool_and_cache(self, daemon):
        """Two tenants' jobs run through the one shared pool; a follow-up
        job re-imaging the same chip hits the shared stage cache."""
        _, body1 = _request(daemon.url + "/jobs", "POST",
                            {"kind": "campaign", "tenant": "alice",
                             "spec": FAST_CLASSIC})
        _, body2 = _request(daemon.url + "/jobs", "POST",
                            {"kind": "campaign", "tenant": "bob",
                             "spec": FAST_OCSA})
        id1 = json.loads(body1)["id"]
        id2 = json.loads(body2)["id"]
        st1 = _wait_terminal(daemon, id1)
        st2 = _wait_terminal(daemon, id2)
        assert st1["state"] == "done", st1
        assert st2["state"] == "done", st2
        assert st1["report_schema"] == "campaign-report/3"

        # cross-job cache reuse: a third tenant resubmits alice's spec and
        # every stage comes back from the shared cache
        _, body3 = _request(daemon.url + "/jobs", "POST",
                            {"kind": "campaign", "tenant": "carol",
                             "spec": FAST_CLASSIC})
        id3 = json.loads(body3)["id"]
        assert _wait_terminal(daemon, id3)["state"] == "done"
        _, report3 = _request(f"{daemon.url}/jobs/{id3}/report")
        data3 = json.loads(report3)
        assert data3["cache_hits"] > 0
        assert data3["cache_misses"] == 0

    def test_report_bit_identical_to_oneshot(self, daemon, tmp_path):
        """The daemon's flushed report matches a one-shot run of the same
        spec (fresh cache, no pool, no bus) in canonical form."""
        _, body = _request(daemon.url + "/jobs", "POST",
                           {"kind": "campaign", "spec": FAST_CLASSIC})
        job_id = json.loads(body)["id"]
        assert _wait_terminal(daemon, job_id)["state"] == "done"
        _, report = _request(f"{daemon.url}/jobs/{job_id}/report")
        oneshot = run_job(
            JobSpec(kind="campaign", payload=dict(FAST_CLASSIC)),
            cache_dir=str(tmp_path / "oneshot-cache"),
        )
        daemon_side = canonical_report(json.loads(report))
        oneshot_side = canonical_report(oneshot.to_dict())
        assert json.dumps(daemon_side, sort_keys=True) == \
            json.dumps(oneshot_side, sort_keys=True)

    def test_event_stream_frames_job_and_terminates(self, daemon):
        """/jobs/{id}/events carries job_start ... job_finish and the
        follow stream ends promptly once the scheduler closes the bus."""
        _, body = _request(daemon.url + "/jobs", "POST",
                           {"kind": "campaign", "spec": FAST_CLASSIC})
        job_id = json.loads(body)["id"]
        assert _wait_terminal(daemon, job_id)["state"] == "done"
        _, snapshot = _request(f"{daemon.url}/jobs/{job_id}/events")
        kinds = [json.loads(line)["kind"] for line in snapshot.splitlines()]
        assert kinds[0] == "job_start"
        assert kinds[-1] == "job_finish"
        assert "campaign_start" in kinds and "campaign_finish" in kinds

        t0 = time.monotonic()
        _, followed = _request(
            f"{daemon.url}/jobs/{job_id}/events?follow=1&timeout_s=30")
        elapsed = time.monotonic() - t0
        assert elapsed < 10.0, "follow stream did not terminate on bus close"
        followed_kinds = [json.loads(l)["kind"] for l in followed.splitlines()]
        assert followed_kinds == kinds

    def test_report_409_before_done(self, daemon):
        _, body = _request(daemon.url + "/jobs", "POST",
                           {"kind": "campaign", "spec": FAST_OCSA})
        job_id = json.loads(body)["id"]
        code, doc = _request_error(f"{daemon.url}/jobs/{job_id}/report")
        assert code == 409
        assert doc["state"] in ("queued", "running")
        assert _wait_terminal(daemon, job_id)["state"] == "done"

    def test_cancel_mid_run_quarantines_cleanly(self, daemon):
        """DELETE on a running job flips its cancel event; the runtime
        quarantines at the next boundary, the report still flushes, and
        the bus closes so streams terminate."""
        # 2-pair regions dodge the warm 1-pair cache so the job is slow
        # enough to catch in flight
        _, body = _request(daemon.url + "/jobs", "POST",
                           {"kind": "campaign",
                            "spec": {"targets": ["classic", "ocsa"],
                                     "pairs": 2, "fast": True}})
        job_id = json.loads(body)["id"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _, st = _request(f"{daemon.url}/jobs/{job_id}")
            if json.loads(st)["state"] == "running":
                break
            time.sleep(0.05)
        _request(f"{daemon.url}/jobs/{job_id}", "DELETE")
        status = _wait_terminal(daemon, job_id)
        assert status["state"] == "cancelled"
        record = daemon.queue.get(job_id)
        assert record.bus.closed
        # the partial report still flushed, with unfinished chips
        # quarantined rather than half-written
        _, report = _request(f"{daemon.url}/jobs/{job_id}/report")
        data = json.loads(report)
        assert data["schema_version"] == "campaign-report/3"
        assert not set(data["quarantined"]) & set(data["chips"])
        for record in data["quarantined"].values():
            assert record["error_type"], record

    def test_drain_finishes_inflight_and_rejects_new(self, daemon):
        """The SIGTERM path: drain lets the running job finish and flush,
        cancels anything still queued, and refuses new admissions.  Kept
        last — the module daemon does not serve jobs afterwards."""
        _, body = _request(daemon.url + "/jobs", "POST",
                           {"kind": "campaign", "spec": FAST_CLASSIC})
        running_id = json.loads(body)["id"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _, st = _request(f"{daemon.url}/jobs/{running_id}")
            if json.loads(st)["state"] == "running":
                break
            time.sleep(0.05)

        drainer = threading.Thread(target=daemon.drain, daemon=True)
        drainer.start()
        drainer.join(timeout=600)
        assert not drainer.is_alive(), "drain did not complete"

        health = json.loads(_request(daemon.url + "/healthz")[1])
        assert health["state"] == "draining"
        status = json.loads(_request(f"{daemon.url}/jobs/{running_id}")[1])
        assert status["state"] == "done"  # in-flight work finished + flushed
        _, report = _request(f"{daemon.url}/jobs/{running_id}/report")
        assert json.loads(report)["schema_version"] == "campaign-report/3"

        code, _ = _request_error(daemon.url + "/jobs", "POST",
                                 {"kind": "campaign", "spec": FAST_CLASSIC})
        assert code == 503
