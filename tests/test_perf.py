"""The kernel perf harness (repro.perf)."""

import json

import numpy as np
import pytest

from repro.errors import ReproError
from repro.perf import (
    BenchReport,
    KernelBench,
    render_report,
    run_benchmarks,
    write_report,
)


@pytest.fixture(scope="module")
def tiny_report():
    # One shared tiny run for the whole module: the harness itself re-checks
    # fast-vs-reference equality, so this doubles as an integration test.
    return run_benchmarks(scale="tiny", include_campaign=False)


class TestKernelBench:
    def test_derived_metrics(self):
        k = KernelBench("k", pixels=1000, fast_seconds=0.001, reference_seconds=0.004)
        assert k.speedup == pytest.approx(4.0)
        assert k.ns_per_pixel == pytest.approx(1000.0)

    def test_no_reference(self):
        k = KernelBench("k", pixels=10, fast_seconds=0.1)
        assert k.speedup is None
        assert k.as_dict()["speedup"] is None


class TestRunBenchmarks:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ReproError, match="scale"):
            run_benchmarks(scale="galactic")

    def test_covers_every_rewritten_kernel(self, tiny_report):
        names = {k.name for k in tiny_report.kernels}
        assert {"align_pair", "align_stack", "denoise_stack[chambolle]",
                "denoise_stack[split_bregman]", "multi_otsu[3]"} <= names
        assert any(n.startswith("contrast_lookup") for n in names)

    def test_fast_kernels_match_references(self, tiny_report):
        """The headline guarantee: every rewrite is output-identical."""
        checked = [k for k in tiny_report.kernels if k.outputs_match is not None]
        assert checked and all(k.outputs_match for k in checked)

    def test_pipeline_and_workload_recorded(self, tiny_report):
        assert tiny_report.pipeline["pixels"] == \
            tiny_report.workload["slices"] * int(np.prod(tiny_report.workload["shape"]))
        assert tiny_report.pipeline["seconds"] > 0
        assert tiny_report.campaign is None  # include_campaign=False

    def test_kernel_lookup(self, tiny_report):
        assert tiny_report.kernel("align_stack").pixels > 0
        with pytest.raises(ReproError):
            tiny_report.kernel("nonexistent")


class TestReportSerialisation:
    def test_write_report_round_trips(self, tiny_report, tmp_path):
        path = write_report(tiny_report, tmp_path / "BENCH_pipeline.json")
        data = json.loads(path.read_text())
        assert data["schema"] == "repro-perf/1"
        assert data["scale"] == "tiny"
        assert len(data["kernels"]) == len(tiny_report.kernels)
        by_name = {k["name"]: k for k in data["kernels"]}
        assert by_name["align_stack"]["speedup"] > 0
        assert by_name["align_stack"]["outputs_match"] is True

    def test_render_report_mentions_kernels(self, tiny_report):
        text = render_report(tiny_report)
        assert "align_stack" in text and "ns/px" in text

    def test_render_flags_mismatches(self):
        report = BenchReport(
            scale="tiny", workload={}, kernels=[
                KernelBench("broken", 10, 0.1, 0.2, outputs_match=False)],
            pipeline={"seconds": 0.1, "ns_per_pixel": 1.0},
        )
        assert "NO" in render_report(report)


class TestCli:
    def test_main_writes_report(self, tmp_path, capsys):
        from repro.perf.__main__ import main
        from repro.perf import load_history

        out = tmp_path / "bench.json"
        history = tmp_path / "history.jsonl"
        assert main(["--scale", "tiny", "--no-campaign", "--out", str(out),
                     "--history", str(history)]) == 0
        assert out.exists()
        assert "report written" in capsys.readouterr().out
        (entry,) = load_history(history)
        assert entry["probe"] == "pipeline"
        assert "campaign:wall_seconds" not in entry["metrics"]  # --no-campaign

    def test_main_rejects_unknown_option(self, capsys):
        from repro.perf.__main__ import main

        assert main(["--frobnicate"]) == 2

    def test_main_rejects_unknown_scale(self, capsys):
        from repro.perf.__main__ import main

        assert main(["--scale", "galactic"]) == 1


class TestAnalogSuite:
    def test_unknown_scale_rejected(self):
        from repro.perf import run_analog_benchmarks

        with pytest.raises(ReproError, match="scale"):
            run_analog_benchmarks(scale="galactic")

    def test_gate_failures_catch_every_regression(self):
        from repro.perf import analog_gate_failures

        green = {
            "solver": {"outputs_match": True, "speedup": 9.0},
            "yield": {"failures_match": True},
            "sweep": {"all_cached_on_rerun": True},
            "min_speedup_gate": 5.0,
        }
        assert analog_gate_failures(green) == []

        slow = dict(green, solver={"outputs_match": True, "speedup": 2.0})
        assert any("speedup" in f for f in analog_gate_failures(slow))

        mismatched = dict(green, solver={"outputs_match": False, "speedup": 9.0})
        assert "solver outputs_match" in analog_gate_failures(mismatched)

        uncached = dict(green, sweep={"all_cached_on_rerun": False})
        assert "sweep cache-hit re-run" in analog_gate_failures(uncached)

    def test_tiny_scale_skips_speedup_gate(self):
        """At tiny N the batched path is legitimately slower; only the
        default scale enforces the >=5x floor."""
        from repro.perf import analog_gate_failures

        tiny = {
            "solver": {"outputs_match": True, "speedup": 0.4},
            "yield": {"failures_match": True},
            "sweep": {"all_cached_on_rerun": True},
            "min_speedup_gate": None,
        }
        assert analog_gate_failures(tiny) == []

    def test_batched_solver_probe_is_bit_identical(self):
        """The real probe at a micro batch: outputs_match must hold even
        where the speedup does not."""
        from repro.perf.bench import measure_batched_solver

        bench = measure_batched_solver(scale="tiny", seed=5)
        assert bench.outputs_match is True
        assert bench.name == "batched_transient[N=8]"
        assert bench.pixels > 0

    def test_analog_report_render_and_write(self, tmp_path):
        from repro.perf import render_analog_report, write_analog_report

        data = {
            "schema": "repro-perf-analog/1",
            "created_unix": 0.0,
            "scale": "tiny",
            "solver": {"name": "batched_transient[N=8]", "fast_seconds": 1.0,
                       "reference_seconds": 0.5, "speedup": 0.5,
                       "outputs_match": True},
            "yield": {"trials": 4, "batched_seconds": 1.0,
                      "reference_seconds": 1.0, "speedup": 1.0,
                      "batched_failures": 0, "reference_failures": 0,
                      "failures_match": True},
            "sweep": {"cells": 2, "cold_wall_seconds": 3.0,
                      "warm_wall_seconds": 0.1, "warm_cache_hits": 4,
                      "warm_cache_misses": 0, "all_cached_on_rerun": True},
            "min_speedup_gate": None,
        }
        text = render_analog_report(data)
        assert "batched_transient" in text and "characterize" in text
        path = write_analog_report(data, tmp_path / "BENCH_analog.json")
        assert json.loads(path.read_text())["schema"] == "repro-perf-analog/1"
