"""Layout elements: layers, transistors, wires, vias."""

import pytest

from repro.errors import LayoutError
from repro.layout.elements import (
    LAYER_MATERIAL,
    Layer,
    Material,
    Orientation,
    Transistor,
    TransistorKind,
    Via,
    Wire,
)
from repro.layout.geometry import Rect


def _transistor(kind=TransistorKind.NSA, channel="nmos", w=100.0, l=40.0, orientation=Orientation.WIDTH_ALONG_X):  # noqa: E741
    return Transistor(
        name="t", kind=kind, channel=channel, width=w, length=l,
        gate=Rect(0, 0, 10, 10), active=Rect(0, 0, 20, 20), orientation=orientation,
    )


class TestLayer:
    def test_every_layer_has_a_material(self):
        for layer in Layer:
            assert layer in LAYER_MATERIAL

    def test_metal_and_via_predicates(self):
        assert Layer.METAL1.is_metal and Layer.METAL2.is_metal
        assert Layer.CONTACT.is_via and Layer.VIA1.is_via
        assert not Layer.GATE.is_metal
        assert not Layer.ACTIVE.is_via

    def test_stack_order_is_bottom_up(self):
        assert Layer.ACTIVE.value < Layer.GATE.value < Layer.METAL1.value < Layer.METAL2.value < Layer.CAPACITOR.value


class TestTransistorKind:
    def test_common_gate_classes(self):
        assert TransistorKind.PRECHARGE.is_common_gate
        assert TransistorKind.EQUALIZER.is_common_gate
        assert TransistorKind.ISOLATION.is_common_gate
        assert TransistorKind.OFFSET_CANCEL.is_common_gate
        assert not TransistorKind.COLUMN.is_common_gate
        assert not TransistorKind.NSA.is_common_gate

    def test_latch_classes(self):
        assert TransistorKind.NSA.is_latch
        assert TransistorKind.PSA.is_latch
        assert not TransistorKind.PRECHARGE.is_latch


class TestTransistor:
    def test_wl_ratio(self):
        assert _transistor(w=100, l=40).wl_ratio == pytest.approx(2.5)

    def test_rejects_bad_channel(self):
        with pytest.raises(LayoutError):
            _transistor(channel="cmos")

    def test_rejects_non_positive_dims(self):
        with pytest.raises(LayoutError):
            _transistor(w=0)

    def test_effective_defaults(self):
        t = _transistor(w=100, l=40)
        assert t.effective_width == pytest.approx(140.0)
        assert t.effective_length == pytest.approx(80.0)

    def test_x_footprint_follows_orientation(self):
        """§V-C: latch elements cost W along X, common-gate elements L."""
        latch = _transistor(orientation=Orientation.WIDTH_ALONG_X)
        assert latch.x_footprint == latch.effective_width
        common = _transistor(
            kind=TransistorKind.PRECHARGE, orientation=Orientation.WIDTH_ALONG_Y
        )
        assert common.x_footprint == common.effective_length


class TestWire:
    def test_dimensions(self):
        w = Wire("w", Layer.METAL1, Rect(0, 0, 100, 18), "BL0")
        assert w.wire_width == 18
        assert w.wire_length == 100

    def test_rejects_non_routing_layer(self):
        with pytest.raises(LayoutError):
            Wire("w", Layer.CONTACT, Rect(0, 0, 10, 10))

    def test_gate_layer_allowed(self):
        Wire("poly", Layer.GATE, Rect(0, 0, 10, 100), "ISO")


class TestVia:
    def test_connects(self):
        v = Via("v", Layer.VIA1, Rect(0, 0, 27, 27), "LA")
        lowers, upper = v.connects
        assert Layer.METAL1 in lowers
        assert upper == Layer.METAL2

    def test_contact_reaches_active_and_gate(self):
        v = Via("c", Layer.CONTACT, Rect(0, 0, 18, 18))
        lowers, upper = v.connects
        assert Layer.ACTIVE in lowers and Layer.GATE in lowers
        assert upper == Layer.METAL1

    def test_rejects_non_via_layer(self):
        with pytest.raises(LayoutError):
            Via("v", Layer.METAL1, Rect(0, 0, 10, 10))
