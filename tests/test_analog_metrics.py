"""Timing/energy metrics (the I5 quantities)."""

import pytest

from repro.analog.metrics import (
    activation_comparison,
    restore_latency_ns,
    sensing_latency_ns,
    switched_energy_fj,
)
from repro.errors import AnalogError


class TestSensingLatency:
    def test_positive_and_bounded(self, classic_activation):
        latency = sensing_latency_ns(classic_activation)
        assert 0.5 < latency < 15.0

    def test_monotone_in_fraction(self, classic_activation):
        assert sensing_latency_ns(classic_activation, 0.5) <= sensing_latency_ns(
            classic_activation, 0.9
        )

    def test_bad_fraction(self, classic_activation):
        with pytest.raises(AnalogError):
            sensing_latency_ns(classic_activation, 1.5)

    def test_ocsa_senses_slower(self, classic_activation, ocsa_activation):
        """I5: OCSA adds events before sensing; assuming classic timing
        underestimates the activation latency."""
        assert sensing_latency_ns(ocsa_activation) > sensing_latency_ns(classic_activation)


class TestRestoreLatency:
    def test_restore_after_sensing(self, classic_activation):
        assert restore_latency_ns(classic_activation) >= sensing_latency_ns(classic_activation)

    def test_data_zero(self):
        from repro.analog import simulate_activation
        from repro.circuits.topologies import SaTopology

        out = simulate_activation(SaTopology.CLASSIC, data=0)
        assert restore_latency_ns(out) > 0


class TestEnergy:
    def test_energy_positive_femtojoules(self, classic_activation):
        e = switched_energy_fj(classic_activation)
        # Two ~90 fF bitlines swinging ~1.1 V: order of a hundred fJ.
        assert 10.0 < e < 1000.0

    def test_ocsa_counts_internal_nodes(self, classic_activation, ocsa_activation):
        comparison = activation_comparison(classic_activation, ocsa_activation)
        assert comparison["energy_ocsa_fj"] > 0
        assert comparison["sensing_latency_ocsa_ns"] > comparison["sensing_latency_classic_ns"]
