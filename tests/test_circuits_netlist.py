"""Netlist representation: devices, nets, graph view."""

import pytest

from repro.circuits.netlist import Circuit, Device, DeviceType, renamed_nets
from repro.errors import NetlistError


def _latch() -> Circuit:
    c = Circuit("latch")
    c.add_mos("n1", "nmos", d="Q", g="QB", s="GND", w=100, l=40)
    c.add_mos("n2", "nmos", d="QB", g="Q", s="GND", w=100, l=40)
    return c


class TestDevice:
    def test_missing_pin_rejected(self):
        with pytest.raises(NetlistError):
            Device("d", DeviceType.NMOS, {"d": "a", "g": "b"})

    def test_unknown_pin_rejected(self):
        with pytest.raises(NetlistError):
            Device("d", DeviceType.RESISTOR, {"p": "a", "n": "b", "x": "c"})

    def test_terminal_order_canonical(self):
        dev = Device("d", DeviceType.NMOS, {"s": "3", "d": "1", "g": "2"})
        assert [pin for pin, _n in dev.terminal_nets()] == ["d", "g", "s"]

    def test_is_mos(self):
        assert DeviceType.NMOS.is_mos and DeviceType.PMOS.is_mos
        assert not DeviceType.CAPACITOR.is_mos


class TestCircuit:
    def test_duplicate_names_rejected(self):
        c = _latch()
        with pytest.raises(NetlistError):
            c.add_mos("n1", "nmos", d="x", g="y", s="z", w=1, l=1)

    def test_convenience_constructors(self):
        c = Circuit("c")
        c.add_capacitor("cs", "A", "0", 10e-15)
        c.add_resistor("r", "A", "B", 100.0)
        c.add_vsource("v", "B", "0", 1.1)
        assert c.count(DeviceType.CAPACITOR) == 1
        assert c.count(DeviceType.RESISTOR) == 1
        assert c.count(DeviceType.VSOURCE) == 1

    def test_nets(self):
        assert _latch().nets() == {"Q", "QB", "GND"}

    def test_devices_on(self):
        c = _latch()
        on_q = c.devices_on("Q")
        pins = {(dev.name, pin) for dev, pin in on_q}
        assert pins == {("n1", "d"), ("n2", "g")}

    def test_device_lookup_error(self):
        with pytest.raises(NetlistError):
            _latch().device("missing")

    def test_mos_count_and_len(self):
        c = _latch()
        assert c.mos_count() == 2
        assert len(c) == 2


class TestAliases:
    def test_alias_resolution(self):
        c = _latch()
        c.alias_net("PEQ_A", "PEQ")
        c.alias_net("PEQ", "PEQ_MAIN")
        assert c.resolve("PEQ_A") == "PEQ_MAIN"

    def test_alias_cycle_detected(self):
        c = Circuit("c")
        c.alias_net("a", "b")
        c.alias_net("b", "a")
        with pytest.raises(NetlistError):
            c.resolve("a")

    def test_aliased_nets_merge_in_queries(self):
        c = _latch()
        c.alias_net("Q", "QB")
        assert len(c.devices_on("QB")) == 4


class TestGraph:
    def test_bipartite_structure(self):
        g = _latch().to_graph()
        net_nodes = [n for n, d in g.nodes(data=True) if d["kind"] == "net"]
        dev_nodes = [n for n, d in g.nodes(data=True) if d["kind"] == "dev"]
        assert len(net_nodes) == 3
        assert len(dev_nodes) == 2
        # Every edge joins a device to a net.
        for a, b in g.edges():
            kinds = {g.nodes[a]["kind"], g.nodes[b]["kind"]}
            assert kinds == {"net", "dev"}

    def test_edge_count_is_total_pins(self):
        g = _latch().to_graph()
        assert g.number_of_edges() == 6  # 2 devices x 3 pins


class TestMergeRename:
    def test_merged_shares_nets(self):
        a = _latch()
        b = _latch()
        combined = a.merged(b, prefix="x_")
        assert len(combined) == 4
        assert combined.nets() == {"Q", "QB", "GND"}

    def test_renamed_nets(self):
        r = renamed_nets(_latch(), {"Q": "BL", "QB": "BLB"})
        assert r.nets() == {"BL", "BLB", "GND"}
        assert r.device("n1").nets["d"] == "BL"
