"""Square-law MOSFET model."""

import pytest
from hypothesis import given, strategies as st

from repro.analog.devices import (
    GLEAK,
    MosModel,
    NMOS_DEFAULT,
    PMOS_DEFAULT,
    mos_current,
    mos_ids,
    mos_operating_region,
)

volt = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


class TestModel:
    def test_bad_channel_rejected(self):
        with pytest.raises(ValueError):
            MosModel("cmos", 1e-4, 0.4)

    def test_vt_shift(self):
        shifted = NMOS_DEFAULT.with_vt_shift(0.05)
        assert shifted.vt == pytest.approx(NMOS_DEFAULT.vt + 0.05)
        assert shifted.kp == NMOS_DEFAULT.kp


class TestRegions:
    def test_cutoff(self):
        assert mos_operating_region(NMOS_DEFAULT, vg=0.2, vd=1.0, vs=0.0) == "cutoff"

    def test_triode(self):
        assert mos_operating_region(NMOS_DEFAULT, vg=1.1, vd=0.1, vs=0.0) == "triode"

    def test_saturation(self):
        assert mos_operating_region(NMOS_DEFAULT, vg=0.8, vd=1.0, vs=0.0) == "saturation"

    def test_pmos_mirrored(self):
        assert mos_operating_region(PMOS_DEFAULT, vg=0.0, vd=0.0, vs=1.1) == "saturation"


class TestCurrent:
    def test_cutoff_leak_only(self):
        i = mos_current(NMOS_DEFAULT, 2.0, vg=0.0, vd=1.0, vs=0.0)
        assert abs(i) <= GLEAK * 1.0 * 1.001

    def test_saturation_positive(self):
        i = mos_current(NMOS_DEFAULT, 2.0, vg=1.1, vd=1.1, vs=0.0)
        assert i > 1e-5  # tens of µA

    def test_current_scales_with_wl(self):
        i1 = mos_current(NMOS_DEFAULT, 1.0, vg=1.1, vd=1.1, vs=0.0)
        i2 = mos_current(NMOS_DEFAULT, 3.0, vg=1.1, vd=1.1, vs=0.0)
        assert i2 == pytest.approx(3 * i1, rel=1e-3)

    def test_symmetric_swap(self):
        """Drain and source swap antisymmetrically (pass transistors)."""
        fwd = mos_current(NMOS_DEFAULT, 2.0, vg=1.5, vd=0.8, vs=0.2)
        rev = mos_current(NMOS_DEFAULT, 2.0, vg=1.5, vd=0.2, vs=0.8)
        assert rev == pytest.approx(-fwd, rel=1e-9)

    def test_pmos_conducts_downward(self):
        i = mos_current(PMOS_DEFAULT, 2.0, vg=0.0, vd=0.0, vs=1.1)
        assert i < -1e-6  # current flows source→drain (negative d→s)

    def test_zero_vds_zero_current(self):
        i = mos_current(NMOS_DEFAULT, 2.0, vg=1.1, vd=0.5, vs=0.5)
        assert i == pytest.approx(0.0, abs=1e-15)

    @given(volt, volt, volt)
    def test_antisymmetry_property(self, vg, vd, vs):
        fwd = mos_current(NMOS_DEFAULT, 2.0, vg, vd, vs)
        rev = mos_current(NMOS_DEFAULT, 2.0, vg, vs, vd)
        assert fwd == pytest.approx(-rev, rel=1e-9, abs=1e-18)

    @given(volt, st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
    def test_current_monotone_in_vgs(self, vd, vg):
        """More gate drive never reduces forward current."""
        lo = mos_current(NMOS_DEFAULT, 2.0, vg, abs(vd), 0.0)
        hi = mos_current(NMOS_DEFAULT, 2.0, vg + 0.2, abs(vd), 0.0)
        assert hi >= lo - 1e-15


class TestIds:
    def test_gm_positive_in_saturation(self):
        _i, gm, gds = mos_ids(NMOS_DEFAULT, 2.0, vg=0.9, vd=1.1, vs=0.0)
        assert gm > 0
        assert gds > 0

    def test_gm_zero_in_cutoff(self):
        _i, gm, _gds = mos_ids(NMOS_DEFAULT, 2.0, vg=0.1, vd=1.1, vs=0.0)
        assert gm == pytest.approx(0.0, abs=1e-9)
