"""Mutual-information slice alignment (§IV-C)."""

import numpy as np
import pytest

from repro.errors import AlignmentBudgetExceeded, PipelineError
from repro.pipeline.register import (
    AlignmentReport,
    align_pair,
    align_stack,
    apply_shift,
    mutual_information,
)


def _texture(seed=0, shape=(96, 48)) -> np.ndarray:
    rng = np.random.default_rng(seed)
    base = rng.random((shape[0] // 8, shape[1] // 8))
    img = np.kron(base, np.ones((8, 8)))
    return np.clip(img, 0, 1)


class TestMutualInformation:
    def test_self_information_is_maximal(self):
        img = _texture()
        other = _texture(seed=5)
        assert mutual_information(img, img) > mutual_information(img, other)

    def test_independent_images_carry_less_information(self):
        a = _texture(seed=1)
        b = _texture(seed=2)
        assert mutual_information(a, b) < 0.7 * mutual_information(a, a)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PipelineError):
            mutual_information(np.zeros((4, 4)), np.zeros((5, 4)))


class TestAlignPair:
    @pytest.mark.parametrize("shift", [(1, 0), (-2, 1), (3, -2), (0, 0)])
    def test_recovers_known_shift(self, shift):
        img = _texture(seed=7)
        moved = apply_shift(img.copy(), *shift)
        dx, dz = align_pair(img, moved, search_px=4)
        assert (dx, dz) == (-shift[0], -shift[1])

    def test_penalty_prefers_zero_on_flat_images(self):
        flat = np.full((64, 32), 0.5)
        assert align_pair(flat, flat.copy()) == (0, 0)


class TestAlignStack:
    def test_no_drift_stays_put(self):
        images = [_texture(seed=i) * 0.2 + _texture(seed=99) * 0.8 for i in range(6)]
        aligned, report = align_stack(images, true_drift_px=[(0, 0)] * 6)
        assert report.max_residual_px() <= 1

    def test_recovers_linear_drift(self):
        base = _texture(seed=42)
        rng = np.random.default_rng(0)
        images = []
        drift = []
        for i in range(8):
            d = (i // 2, 0)  # slow linear drift in x
            img = apply_shift(base.copy(), *d) + rng.normal(0, 0.01, base.shape)
            images.append(np.clip(img, 0, 1))
            drift.append(d)
        aligned, report = align_stack(images, true_drift_px=drift)
        assert report.max_residual_px() <= 1
        # The corrected images match the first slice.
        for img in aligned[1:]:
            assert np.abs(img[8:-8, 8:-8] - aligned[0][8:-8, 8:-8]).mean() < 0.05

    def test_empty_stack_rejected(self):
        with pytest.raises(PipelineError):
            align_stack([])

    def test_drift_length_mismatch_rejected(self):
        with pytest.raises(PipelineError):
            align_stack([_texture()], true_drift_px=[(0, 0), (1, 1)])


class TestReport:
    def test_residual_fraction_and_budget(self):
        report = AlignmentReport(corrections=[(0, 0)], residual_px=[(2, 1)])
        assert report.max_residual_px() == 2
        assert report.residual_fraction(200) == pytest.approx(0.01)
        report.check_budget(2000, budget_fraction=0.0077)  # 0.1% < 0.77%
        with pytest.raises(AlignmentBudgetExceeded):
            report.check_budget(100, budget_fraction=0.0077)  # 2% > 0.77%

    def test_zero_extent_rejected(self):
        report = AlignmentReport(corrections=[(0, 0)])
        with pytest.raises(PipelineError):
            report.residual_fraction(0)
