"""Mutual-information slice alignment (§IV-C)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AlignmentBudgetExceeded, PipelineError
from repro.pipeline.register import (
    AlignmentReport,
    _reference_align_pair,
    _reference_align_stack,
    align_pair,
    align_stack,
    apply_shift,
    mutual_information,
)


def _texture(seed=0, shape=(96, 48)) -> np.ndarray:
    rng = np.random.default_rng(seed)
    base = rng.random((shape[0] // 8, shape[1] // 8))
    img = np.kron(base, np.ones((8, 8)))
    return np.clip(img, 0, 1)


class TestMutualInformation:
    def test_self_information_is_maximal(self):
        img = _texture()
        other = _texture(seed=5)
        assert mutual_information(img, img) > mutual_information(img, other)

    def test_independent_images_carry_less_information(self):
        a = _texture(seed=1)
        b = _texture(seed=2)
        assert mutual_information(a, b) < 0.7 * mutual_information(a, a)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PipelineError):
            mutual_information(np.zeros((4, 4)), np.zeros((5, 4)))


class TestAlignPair:
    @pytest.mark.parametrize("shift", [(1, 0), (-2, 1), (3, -2), (0, 0)])
    def test_recovers_known_shift(self, shift):
        img = _texture(seed=7)
        moved = apply_shift(img.copy(), *shift)
        dx, dz = align_pair(img, moved, search_px=4)
        assert (dx, dz) == (-shift[0], -shift[1])

    def test_penalty_prefers_zero_on_flat_images(self):
        flat = np.full((64, 32), 0.5)
        assert align_pair(flat, flat.copy()) == (0, 0)


class TestAlignStack:
    def test_no_drift_stays_put(self):
        images = [_texture(seed=i) * 0.2 + _texture(seed=99) * 0.8 for i in range(6)]
        aligned, report = align_stack(images, true_drift_px=[(0, 0)] * 6)
        assert report.max_residual_px() <= 1

    def test_recovers_linear_drift(self):
        base = _texture(seed=42)
        rng = np.random.default_rng(0)
        images = []
        drift = []
        for i in range(8):
            d = (i // 2, 0)  # slow linear drift in x
            img = apply_shift(base.copy(), *d) + rng.normal(0, 0.01, base.shape)
            images.append(np.clip(img, 0, 1))
            drift.append(d)
        aligned, report = align_stack(images, true_drift_px=drift)
        assert report.max_residual_px() <= 1
        # The corrected images match the first slice.
        for img in aligned[1:]:
            assert np.abs(img[8:-8, 8:-8] - aligned[0][8:-8, 8:-8]).mean() < 0.05

    def test_empty_stack_rejected(self):
        with pytest.raises(PipelineError):
            align_stack([])

    def test_drift_length_mismatch_rejected(self):
        with pytest.raises(PipelineError):
            align_stack([_texture()], true_drift_px=[(0, 0), (1, 1)])


class TestBincountEqualsBruteForce:
    """The bincount-MI fast path must reproduce the retained brute force."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        nx=st.integers(16, 72),
        nz=st.integers(16, 72),
        noise=st.floats(0.0, 0.15),
        float32=st.booleans(),
    )
    def test_align_pair_identical_on_random_noisy_pairs(self, seed, nx, nz, noise, float32):
        rng = np.random.default_rng(seed)
        a = np.clip(
            np.kron(rng.random((-(-nx // 8), -(-nz // 8))), np.ones((8, 8)))[:nx, :nz]
            + rng.normal(0, noise, (nx, nz)), 0, 1,
        )
        shift = (int(rng.integers(-3, 4)), int(rng.integers(-3, 4)))
        b = np.clip(np.roll(a, shift, (0, 1)) + rng.normal(0, noise, a.shape), 0, 1)
        if float32:
            a, b = a.astype(np.float32), b.astype(np.float32)
        assert align_pair(a, b, search_px=3) == _reference_align_pair(a, b, search_px=3)

    def test_out_of_range_pixels_dropped_like_histogram2d(self):
        """histogram2d drops samples outside (0, 1); the fused-index path
        must drop exactly the same pixels."""
        rng = np.random.default_rng(3)
        a = rng.normal(0.5, 0.5, (48, 40))  # plenty of pixels outside [0, 1]
        b = np.roll(a, (1, -1), (0, 1)) + rng.normal(0, 0.05, a.shape)
        assert align_pair(a, b, search_px=2) == _reference_align_pair(a, b, search_px=2)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_align_stack_identical_on_random_noisy_stacks(self, seed):
        rng = np.random.default_rng(seed)
        base = np.clip(
            np.kron(rng.random((6, 5)), np.ones((8, 8))) + rng.normal(0, 0.05, (48, 40)), 0, 1
        )
        images, drift = [], []
        for i in range(6):
            d = (int(rng.integers(-1, 2)) * (i % 2), int(rng.integers(-1, 2)))
            images.append(np.clip(
                apply_shift(base.copy(), *d) + rng.normal(0, 0.03, base.shape), 0, 1))
            drift.append(d)
        fast, rep_fast = align_stack(images, search_px=2, true_drift_px=drift)
        ref, rep_ref = _reference_align_stack(images, search_px=2, true_drift_px=drift)
        assert rep_fast.corrections == rep_ref.corrections
        assert rep_fast.residual_px == rep_ref.residual_px
        for f, r in zip(fast, ref):
            np.testing.assert_array_equal(f, r)

    def test_shift_penalty_forwarded_by_align_stack(self):
        """A huge penalty pins every correction to (0, 0)."""
        rng = np.random.default_rng(9)
        base = np.clip(np.kron(rng.random((6, 5)), np.ones((8, 8))), 0, 1)
        images = [
            np.clip(np.roll(base, i, axis=0) + rng.normal(0, 0.02, base.shape), 0, 1)
            for i in range(4)
        ]
        _, report = align_stack(images, search_px=2, shift_penalty=1e6)
        assert report.corrections == [(0, 0)] * 4

    def test_pyramid_strategy_recovers_known_shift(self):
        rng = np.random.default_rng(21)
        img = np.clip(np.kron(rng.random((12, 6)), np.ones((8, 8))), 0, 1)
        moved = apply_shift(img.copy(), 2, -1)
        assert align_pair(img, moved, search_px=4, search_strategy="pyramid") == (-2, 1)

    def test_unknown_strategy_rejected(self):
        img = np.zeros((16, 16))
        with pytest.raises(PipelineError, match="strategy"):
            align_pair(img, img, search_strategy="simulated_annealing")
        with pytest.raises(PipelineError, match="strategy"):
            align_stack([img, img], search_strategy="simulated_annealing")


class TestReport:
    def test_residual_fraction_and_budget(self):
        report = AlignmentReport(corrections=[(0, 0)], residual_px=[(2, 1)])
        assert report.max_residual_px() == 2
        assert report.residual_fraction(200) == pytest.approx(0.01)
        report.check_budget(2000, budget_fraction=0.0077)  # 0.1% < 0.77%
        with pytest.raises(AlignmentBudgetExceeded):
            report.check_budget(100, budget_fraction=0.0077)  # 2% > 0.77%

    def test_zero_extent_rejected(self):
        report = AlignmentReport(corrections=[(0, 0)])
        with pytest.raises(PipelineError):
            report.residual_fraction(0)
