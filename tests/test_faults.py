"""Seeded fault injection (repro.faults) and the slice QC gates.

The load-bearing contract: faults are bit-reproducible from the plan
seed, an inert plan is indistinguishable from no plan at all, and every
injected defect class trips the QC gate that exists to catch it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CampaignError
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.imaging import FibSemCampaign, SemParameters
from repro.imaging.fib import acquire_stack
from repro.imaging.voxel import voxelize
from repro.layout import SaRegionSpec, generate_sa_region
from repro.pipeline.stack import QcThresholds, qc_stack, slice_quality


@pytest.fixture(scope="module")
def volume():
    cell = generate_sa_region(SaRegionSpec(name="flt", topology="classic", n_pairs=1))
    return voxelize(cell, voxel_nm=6.0, margin_nm=40.0)


CAMPAIGN = FibSemCampaign(sem=SemParameters(dwell_time_us=6.0))


def _acquire(volume, plan=None, attempt=0):
    injector = FaultInjector(plan, attempt=attempt) if plan is not None else None
    return acquire_stack(volume, CAMPAIGN, y_stop_nm=300.0, injector=injector)


class TestInertPlanBitIdentity:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_zero_rate_plan_is_bit_identical(self, volume, seed):
        """Property: ANY all-rates-zero plan reproduces the clean path."""
        clean = _acquire(volume)
        inert = _acquire(volume, FaultPlan(seed=seed))
        assert len(clean) == len(inert)
        for a, b in zip(clean.images, inert.images):
            assert np.array_equal(a, b)
        assert clean.true_drift_px == inert.true_drift_px
        assert clean.slice_y_nm == inert.slice_y_nm
        assert inert.fault_events == []

    def test_active_plan_changes_output(self, volume):
        clean = _acquire(volume)
        faulty = _acquire(volume, FaultPlan(seed=0, drop_rate=0.5))
        assert faulty.fault_events
        assert not all(
            np.array_equal(a, b) for a, b in zip(clean.images, faulty.images)
        )


class TestDeterminism:
    def test_same_plan_same_stack(self, volume):
        plan = FaultPlan(seed=11, drop_rate=0.2, drift_spike_rate=0.1, blur_rate=0.1)
        a = _acquire(volume, plan)
        b = _acquire(volume, plan)
        assert a.fault_events == b.fault_events
        for x, y in zip(a.images, b.images):
            assert np.array_equal(x, y)

    def test_retry_rerolls_faults_not_content(self, volume):
        """attempt+1 draws a fresh fault stream from the same clean walk."""
        plan = FaultPlan(seed=11, drop_rate=0.2)
        a = _acquire(volume, plan, attempt=0)
        b = _acquire(volume, plan, attempt=1)
        assert a.fault_events != b.fault_events
        # Slices untouched by faults in both attempts are identical: the
        # clean acquisition RNG never sees the injector.
        dirty = {e.slice_index for e in a.fault_events + b.fault_events}
        for i, (x, y) in enumerate(zip(a.images, b.images)):
            if i not in dirty:
                assert np.array_equal(x, y)

    def test_different_seeds_differ(self, volume):
        a = _acquire(volume, FaultPlan(seed=1, drop_rate=0.3))
        b = _acquire(volume, FaultPlan(seed=2, drop_rate=0.3))
        assert a.fault_events != b.fault_events


class TestFaultBehaviours:
    def test_drop_blacks_out_the_frame(self, volume):
        stack = _acquire(volume, FaultPlan(seed=0, drop_rate=1.0))
        assert all(e.kind == "drop" for e in stack.fault_events)
        for img in stack.images:
            assert slice_quality(img)["blackout_fraction"] > 0.9

    def test_saturation_pins_the_white_rail(self, volume):
        stack = _acquire(volume, FaultPlan(seed=0, saturation_rate=1.0))
        for img in stack.images:
            assert slice_quality(img)["saturation_fraction"] > 0.55

    def test_blur_burst_covers_consecutive_slices(self, volume):
        plan = FaultPlan(seed=3, blur_rate=0.1, blur_burst_len=3)
        stack = _acquire(volume, plan)
        blurred = sorted(e.slice_index for e in stack.fault_events if e.kind == "blur")
        assert blurred
        first = blurred[0]
        assert {first, first + 1, first + 2} <= set(blurred)

    def test_drift_spike_exceeds_clean_clamp(self, volume):
        plan = FaultPlan(seed=2, drift_spike_rate=0.2, drift_spike_px=9.0)
        stack = _acquire(volume, plan)
        spikes = [e for e in stack.fault_events if e.kind == "drift_spike"]
        assert spikes
        worst = max(max(abs(a), abs(b)) for a, b in stack.true_drift_px)
        assert worst > CAMPAIGN.max_drift_px

    def test_overshoot_recorded(self, volume):
        stack = _acquire(volume, FaultPlan(seed=0, overshoot_rate=0.3))
        assert any(e.kind == "overshoot" for e in stack.fault_events)
        # Same stack length: the slice schedule is fixed, the *material* isn't.
        assert len(stack) == len(_acquire(volume))


class TestQcGates:
    def test_clean_stack_passes_default_thresholds(self, volume):
        stack = _acquire(volume)
        qc = qc_stack(stack.images, true_drift_px=stack.true_drift_px)
        assert qc.passed
        assert qc.failed_indices == ()

    @pytest.mark.parametrize("plan_kwargs,expected_kind", [
        ({"drop_rate": 1.0}, "blackout"),
        ({"saturation_rate": 1.0}, "saturation"),
        ({"blur_rate": 1.0}, "sharpness"),
        ({"drift_spike_rate": 0.2, "drift_spike_px": 9.0}, "drift_step"),
    ])
    def test_each_fault_class_is_caught(self, volume, plan_kwargs, expected_kind):
        stack = _acquire(volume, FaultPlan(seed=2, **plan_kwargs))
        qc = qc_stack(stack.images, true_drift_px=stack.true_drift_px)
        assert not qc.passed
        assert expected_kind in qc.failure_kinds

    def test_disabled_gate_is_skipped(self, volume):
        stack = _acquire(volume, FaultPlan(seed=0, drop_rate=1.0))
        lax = QcThresholds(min_intensity_spread=None, max_blackout_fraction=None,
                           min_sharpness=None)
        assert qc_stack(stack.images, lax).passed

    def test_slice_quality_rejects_non_2d(self):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError):
            slice_quality(np.zeros(5))

    def test_negative_threshold_rejected(self):
        from repro.errors import PipelineError

        with pytest.raises(PipelineError):
            QcThresholds(min_sharpness=-1.0)


class TestFaultPlanApi:
    def test_rate_validation(self):
        with pytest.raises(CampaignError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(CampaignError):
            FaultPlan(blur_burst_len=0)

    def test_active_property(self):
        assert not FaultPlan(seed=99).active
        assert FaultPlan(drop_rate=0.01).active

    def test_parse_round_trip(self):
        plan = FaultPlan.parse("seed=7, drop=0.1, drift=0.08, spike_px=9, burst=4")
        assert plan.seed == 7
        assert plan.drop_rate == pytest.approx(0.1)
        assert plan.drift_spike_rate == pytest.approx(0.08)
        assert plan.drift_spike_px == pytest.approx(9.0)
        assert plan.blur_burst_len == 4

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(CampaignError, match="unknown fault spec key"):
            FaultPlan.parse("gremlins=1")
        with pytest.raises(CampaignError, match="key=value"):
            FaultPlan.parse("drop")

    def test_for_chip_derives_distinct_seeds(self):
        plan = FaultPlan(seed=5, drop_rate=0.1)
        a, b = plan.for_chip("chip-a"), plan.for_chip("chip-b")
        assert a.seed != b.seed
        assert a.drop_rate == b.drop_rate == 0.1
        assert plan.for_chip("chip-a") == a  # stable derivation

    def test_cache_token_covers_every_field(self):
        import dataclasses

        token = FaultPlan(seed=1, drop_rate=0.2).cache_token()
        assert set(token) == {f.name for f in dataclasses.fields(FaultPlan)}

    def test_event_dict_round_trip(self):
        event = FaultEvent("drop", 4, attempt=1, magnitude=1.0)
        assert FaultEvent.from_dict(event.to_dict()) == event
