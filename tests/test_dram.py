"""DRAM command-level substrate (timings, bank, §VI-D experiments)."""

import pytest

from repro.circuits.topologies import SaTopology
from repro.dram import (
    Bank,
    BankState,
    CellState,
    Command,
    CommandTrace,
    JEDEC_DDR4,
    TimingParameters,
    charge_sharing_window,
    derive_timings,
    multi_row_activation_experiment,
    truncated_activation_experiment,
)
from repro.dram.commands import act_pre_act, legal_read, truncated_activation
from repro.dram.timing import timing_gap
from repro.errors import EvaluationError


class TestTimings:
    def test_jedec_consistent(self):
        assert JEDEC_DDR4.t_rcd < JEDEC_DDR4.t_ras
        assert JEDEC_DDR4.t_rc == JEDEC_DDR4.t_ras + JEDEC_DDR4.t_rp

    def test_inconsistent_rejected(self):
        with pytest.raises(EvaluationError):
            TimingParameters("bad", t_charge_share=5.0, t_rcd=3.0, t_ras=10.0, t_rp=5.0)

    def test_derived_from_analog(self):
        t = derive_timings(SaTopology.CLASSIC)
        assert 0 < t.t_charge_share < t.t_rcd < t.t_ras

    def test_ocsa_milestones_later(self):
        """The §VI-D core fact: OCSA shifts the activation milestones."""
        gap = timing_gap()
        assert gap["charge_share_delta_ns"] > 1.0
        assert gap["rcd_delta_ns"] > 0
        assert gap["ras_delta_ns"] > 0

    def test_derivation_cached(self):
        assert derive_timings(SaTopology.OCSA) is derive_timings(SaTopology.OCSA)


class TestTraces:
    def test_legal_read_order(self):
        trace = legal_read(5, 3, JEDEC_DDR4)
        commands = [c.command for c in trace]
        assert commands == [Command.ACT, Command.RD, Command.PRE]

    def test_act_requires_row(self):
        with pytest.raises(EvaluationError):
            CommandTrace("x").at(0.0, Command.ACT)

    def test_rd_requires_col(self):
        with pytest.raises(EvaluationError):
            CommandTrace("x").at(0.0, Command.RD, row=1)

    def test_truncated_positive_interval(self):
        with pytest.raises(EvaluationError):
            truncated_activation(1, -5.0)

    def test_iteration_is_time_sorted(self):
        trace = CommandTrace("x")
        trace.at(10.0, Command.PRE)
        trace.at(0.0, Command.ACT, row=1)
        assert [c.command for c in trace] == [Command.ACT, Command.PRE]


class TestBankLegal:
    def test_legal_read_is_clean(self):
        bank = Bank(topology=SaTopology.CLASSIC)
        result = bank.execute(legal_read(9, 2, bank.timings))
        assert result.clean
        assert result.row_states[9] is CellState.RESTORED
        assert result.reads == [(pytest.approx(bank.timings.t_rcd), 9, True)]

    def test_enforcing_bank_raises(self):
        bank = Bank(topology=SaTopology.CLASSIC, enforce=True)
        with pytest.raises(EvaluationError):
            bank.execute(truncated_activation(4, 1.0))

    def test_row_range_checked(self):
        bank = Bank(rows=16)
        with pytest.raises(EvaluationError):
            bank.execute(legal_read(99, 0, bank.timings))

    def test_open_row_left_active(self):
        bank = Bank()
        trace = CommandTrace("open").at(0.0, Command.ACT, row=1)
        result = bank.execute(trace)
        assert result.final_state is BankState.ACTIVE
        assert result.row_states[1] is CellState.RESTORED  # settled at end


class TestBankOutOfSpec:
    def test_pre_before_charge_share_leaves_cell_untouched(self):
        bank = Bank(topology=SaTopology.OCSA)
        early = 0.5 * bank.timings.t_charge_share
        result = bank.execute(truncated_activation(4, early))
        assert result.row_states[4] is CellState.UNTOUCHED
        assert not result.clean  # tRAS violated

    def test_pre_between_share_and_sense_corrupts(self):
        bank = Bank(topology=SaTopology.CLASSIC)
        mid = (bank.timings.t_charge_share + bank.timings.t_rcd) / 2
        result = bank.execute(truncated_activation(4, mid))
        assert result.row_states[4] is CellState.CORRUPTED

    def test_pre_during_restore_weakens(self):
        bank = Bank(topology=SaTopology.CLASSIC)
        mid = (bank.timings.t_rcd + bank.timings.t_ras) / 2
        result = bank.execute(truncated_activation(4, mid))
        assert result.row_states[4] is CellState.WEAK

    def test_early_read_flagged_invalid(self):
        bank = Bank(topology=SaTopology.CLASSIC)
        trace = CommandTrace("early_rd")
        trace.at(0.0, Command.ACT, row=2)
        trace.at(bank.timings.t_rcd * 0.3, Command.RD, row=2, col=0)
        result = bank.execute(trace)
        (_t, _row, valid), = result.reads
        assert not valid
        assert any(v.parameter == "tRCD" for v in result.violations)

    def test_multi_row_sharing_when_first_act_reached_sharing(self):
        bank = Bank(topology=SaTopology.CLASSIC)
        t1 = bank.timings.t_charge_share * 2
        result = bank.execute(act_pre_act(3, 12, t1, 1.0))
        assert result.shared_rows == [[3, 12]]

    def test_no_sharing_when_first_act_too_short(self):
        bank = Bank(topology=SaTopology.OCSA)
        t1 = bank.timings.t_charge_share * 0.5
        result = bank.execute(act_pre_act(3, 12, t1, 1.0))
        assert result.shared_rows == []


class TestSectionVID:
    def test_hazard_window_positive(self):
        window = charge_sharing_window()
        assert window["hazard_window_ns"] > 1.0

    def test_divergent_truncation_interval_exists(self):
        """A t1 that corrupts a classic chip but leaves an OCSA chip
        untouched — the §VI-D experiment hazard made concrete."""
        window = charge_sharing_window()
        t1 = (window["classic_min_t1_ns"] + window["ocsa_min_t1_ns"]) / 2
        result = truncated_activation_experiment(t1)
        assert result.diverges
        assert result.classic_outcome == "corrupted"
        assert result.ocsa_outcome == "untouched"

    def test_multi_row_trick_diverges_in_the_window(self):
        window = charge_sharing_window()
        t1 = (window["classic_min_t1_ns"] + window["ocsa_min_t1_ns"]) / 2
        result = multi_row_activation_experiment(t1)
        assert result.classic_outcome == "rows_shared"
        assert result.ocsa_outcome == "no_sharing"
        assert result.diverges

    def test_long_t1_works_on_both(self):
        window = charge_sharing_window()
        t1 = window["ocsa_min_t1_ns"] * 1.5
        result = multi_row_activation_experiment(t1)
        assert result.classic_outcome == result.ocsa_outcome == "rows_shared"


class TestInDramCompute:
    """AMBIT/ComputeDRAM-style majority over shared rows."""

    A = (1, 0, 1, 1, 0, 0, 1, 0)
    B = (1, 1, 0, 1, 0, 1, 0, 0)

    def test_row_data_round_trip(self):
        bank = Bank()
        bank.load_row(5, self.A)
        assert bank.read_row(5) == self.A
        assert bank.read_row(6) is None

    def test_bad_bits_rejected(self):
        with pytest.raises(EvaluationError):
            Bank().load_row(1, (0, 2))

    def test_majority_on_classic(self):
        from repro.dram.compute import in_dram_majority

        bank = Bank(topology=SaTopology.CLASSIC)
        result = in_dram_majority(bank, (self.A, self.B, (1,) * 8))
        assert result.succeeded and result.correct

    def test_and_or_on_classic(self):
        from repro.dram.compute import in_dram_and, in_dram_or

        r_and = in_dram_and(Bank(topology=SaTopology.CLASSIC), self.A, self.B)
        assert r_and.correct
        assert r_and.result_bits == tuple(x & y for x, y in zip(self.A, self.B))
        r_or = in_dram_or(Bank(topology=SaTopology.CLASSIC), self.A, self.B)
        assert r_or.correct

    def test_same_calibration_fails_on_ocsa(self):
        """The §VI-D hazard: classic-calibrated t1 never reaches charge
        sharing on an OCSA chip, so no operation happens."""
        from repro.dram.compute import in_dram_and

        result = in_dram_and(Bank(topology=SaTopology.OCSA), self.A, self.B)
        assert not result.succeeded
        # ...and the operand rows were not destroyed either.
        bank = Bank(topology=SaTopology.OCSA)
        in_dram_and(bank, self.A, self.B)
        assert bank.read_row(8) == self.A

    def test_recalibrated_t1_works_on_ocsa(self):
        """With HiFi-DRAM's timing data the trick recalibrates."""
        from repro.dram.compute import in_dram_and

        bank = Bank(topology=SaTopology.OCSA)
        t1 = bank.timings.t_charge_share * 1.5
        result = in_dram_and(bank, self.A, self.B, t1_ns=t1)
        assert result.correct

    def test_width_mismatch_rejected(self):
        from repro.dram.compute import in_dram_majority

        with pytest.raises(EvaluationError):
            in_dram_majority(Bank(), (self.A, self.B, (1, 0)))

    def test_majority_skips_unloaded_rows(self):
        from repro.dram.compute import triple_row_trace

        bank = Bank(topology=SaTopology.CLASSIC)
        bank.load_row(8, self.A)  # rows 16/24 never loaded
        t1 = bank.timings.t_charge_share * 1.5
        result = bank.execute(triple_row_trace((8, 16, 24), t1, bank.timings.t_ras + 1))
        assert result.shared_rows  # charges did mix...
        assert not result.computed_rows  # ...but undefined data never latches
        assert bank.read_row(8) == self.A
