"""Public analog models CROW and REM (§VI-A)."""

import pytest

from repro.core.models import CROW, REM, AnalogModel, public_models
from repro.errors import EvaluationError
from repro.layout.elements import TransistorKind


class TestCorpus:
    def test_only_two_public_models(self):
        """§VI-A: no DDR5 model exists; only CROW and REM for DDR4."""
        assert set(public_models()) == {"CROW", "REM"}

    def test_years(self):
        assert CROW.year == 2019
        assert REM.year == 2022


class TestCrow:
    def test_no_column_transistors(self):
        """§VI-A: CROW does not include column transistors."""
        assert not CROW.includes_column
        assert not CROW.has(TransistorKind.COLUMN)

    def test_best_guess_basis(self):
        assert "guess" in CROW.basis

    def test_vastly_out_of_range(self):
        """Fig 11 omits CROW 'as severely out of range': its widths dwarf
        every measured chip's."""
        from repro.core.chips import CHIPS

        crow_nsa = CROW.transistor(TransistorKind.NSA).w
        for chip in CHIPS.values():
            assert crow_nsa > 1.4 * chip.transistor(TransistorKind.NSA).w

    def test_missing_element_raises(self):
        with pytest.raises(EvaluationError):
            CROW.transistor(TransistorKind.COLUMN)


class TestRem:
    def test_includes_column(self):
        assert REM.includes_column
        assert REM.has(TransistorKind.COLUMN)

    def test_zentel_basis(self):
        assert "Zentel" in REM.basis
        assert "25" in REM.technology

    def test_closer_to_silicon_than_crow(self):
        from repro.core.chips import chip

        c4 = chip("C4")
        for kind in (TransistorKind.NSA, TransistorKind.PSA, TransistorKind.PRECHARGE):
            rem_err = abs(REM.transistor(kind).w - c4.transistor(kind).w)
            crow_err = abs(CROW.transistor(kind).w - c4.transistor(kind).w)
            assert rem_err < crow_err


class TestNeither:
    def test_no_ocsa_support(self):
        """§VI-A: neither model includes the OCSA design."""
        for model in public_models().values():
            assert not model.includes_ocsa
            assert not model.has(TransistorKind.ISOLATION)
            assert not model.has(TransistorKind.OFFSET_CANCEL)
