"""SVG layout rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import LayoutError
from repro.layout.cell import LayoutCell
from repro.layout.svg import render_svg, write_svg
from repro.layout.elements import Layer


class TestRender:
    def test_valid_xml(self, classic_cell):
        svg = render_svg(classic_cell)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_rect_count_matches_shapes(self, classic_cell):
        svg = render_svg(classic_cell, legend=False)
        total_shapes = sum(
            len(classic_cell.shapes_on(layer)) for layer in Layer
        )
        # +1 for the background rect.
        assert svg.count("<rect") == total_shapes + 1

    def test_layer_restriction(self, classic_cell):
        svg = render_svg(classic_cell, layers=(Layer.METAL1,), legend=False)
        m1 = len(classic_cell.shapes_on(Layer.METAL1))
        assert svg.count("<rect") == m1 + 1

    def test_labels(self, classic_cell):
        svg = render_svg(classic_cell, label_transistors=True)
        assert "n1_l0" in svg

    def test_legend_lists_layers(self, classic_cell):
        svg = render_svg(classic_cell)
        for layer in Layer:
            assert layer.name in svg

    def test_empty_cell_rejected(self):
        with pytest.raises(LayoutError):
            render_svg(LayoutCell("empty"))

    def test_bad_width_rejected(self, classic_cell):
        with pytest.raises(LayoutError):
            render_svg(classic_cell, width_px=0)

    def test_write(self, tmp_path, ocsa_cell):
        path = write_svg(ocsa_cell, tmp_path / "region.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_recovered_layout_renders(self, ocsa_re):
        """The RE output's recovered layout renders too."""
        from repro.reveng import features_to_cell

        cell = features_to_cell(ocsa_re.extracted.features)
        svg = render_svg(cell, legend=False)
        assert svg.count("<rect") > 100
