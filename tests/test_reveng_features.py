"""Feature masks and component labelling."""

import numpy as np
import pytest

from repro.errors import ReverseEngineeringError
from repro.imaging.sem import SemParameters
from repro.layout.elements import Layer
from repro.reveng.features import FEATURE_LAYERS, PlanarFeatures, _drop_specks


class TestFromCell:
    def test_all_layers_present(self, classic_cell):
        features = PlanarFeatures.from_cell(classic_cell)
        assert set(features.masks) == set(FEATURE_LAYERS)

    def test_shape_consistent(self, classic_cell):
        features = PlanarFeatures.from_cell(classic_cell)
        shapes = {m.shape for m in features.masks.values()}
        assert len(shapes) == 1
        assert features.shape in shapes

    def test_coordinates_round_trip(self, classic_cell):
        features = PlanarFeatures.from_cell(classic_cell)
        x, y = features.to_nm(10, 20)
        assert x == pytest.approx(features.origin_x_nm + 10.5 * features.pixel_nm)
        assert y == pytest.approx(features.origin_y_nm + 20.5 * features.pixel_nm)

    def test_extent(self, classic_cell):
        features = PlanarFeatures.from_cell(classic_cell)
        ex, ey = features.extent_nm()
        box = classic_cell.bounding_box()
        assert ex >= box.width and ey >= box.height


class TestComponents:
    def test_labels_cached(self, classic_cell):
        features = PlanarFeatures.from_cell(classic_cell)
        a = features.components(Layer.METAL1)
        b = features.components(Layer.METAL1)
        assert a[0] is b[0]

    def test_component_count_positive(self, classic_cell):
        features = PlanarFeatures.from_cell(classic_cell)
        _labels, count = features.components(Layer.METAL1)
        assert count > 10

    def test_component_mask_and_centroid(self, classic_cell):
        features = PlanarFeatures.from_cell(classic_cell)
        labels, count = features.components(Layer.METAL2)
        mask = features.component_mask(Layer.METAL2, 1)
        assert mask.any()
        cx, cy = features.component_centroid_nm(Layer.METAL2, 1)
        box = classic_cell.bounding_box()
        assert box.x0 - 100 < cx < box.x1 + 100

    def test_missing_layer_rejected(self):
        features = PlanarFeatures(masks={}, pixel_nm=6.0)
        with pytest.raises(ReverseEngineeringError):
            features.components(Layer.METAL1)


class TestSpeckFilter:
    def test_small_components_dropped(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[5:15, 5:15] = True
        mask[0, 0] = True
        out = _drop_specks(mask, 4)
        assert out[10, 10]
        assert not out[0, 0]

    def test_noop_for_min_area_one(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 1] = True
        assert _drop_specks(mask, 1)[1, 1]


class TestFromViews:
    def test_ideal_views_recover_masks(self, ocsa_cell):
        """Clean synthetic views classified by intensity recover the
        ground-truth masks closely."""
        from repro.imaging.sem import contrast_lookup
        from repro.imaging.voxel import voxelize

        sem = SemParameters()
        vol = voxelize(ocsa_cell, voxel_nm=6.0)
        table = contrast_lookup(sem)
        # Build ideal per-layer planar intensity views from the volume.
        views = {}
        for layer in FEATURE_LAYERS:
            from repro.imaging.voxel import LAYER_Z_RANGES

            z0, z1 = LAYER_Z_RANGES[layer]
            k0, k1 = int(z0 / 6.0), max(int(z0 / 6.0) + 1, int(np.ceil(z1 / 6.0)))
            views[layer] = table[vol.data[:, :, k0:k1]].mean(axis=2).astype(np.float32)
        features = PlanarFeatures.from_views(views, pixel_nm=6.0, sem=sem)
        truth = PlanarFeatures.from_cell(ocsa_cell)
        for layer in (Layer.METAL1, Layer.METAL2):
            a, b = features.masks[layer], truth.masks[layer]
            n = min(a.shape[1], b.shape[1])
            inter = (a[:, :n] & b[:, :n]).sum()
            union = (a[:, :n] | b[:, :n]).sum()
            assert inter / union > 0.8, layer

    def test_missing_views_rejected(self):
        with pytest.raises(ReverseEngineeringError):
            PlanarFeatures.from_views({Layer.METAL1: np.zeros((4, 4))}, pixel_nm=6.0)
