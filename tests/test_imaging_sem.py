"""SEM image formation: detectors, dwell time, contrast."""

import numpy as np
import pytest

from repro.errors import ImagingError
from repro.imaging.sem import (
    Detector,
    SemParameters,
    contrast_lookup,
    contrast_separation,
    image_cross_section,
    snr_estimate,
)
from repro.imaging.voxel import MATERIAL_CODES
from repro.layout.elements import Material


def _material_strip() -> np.ndarray:
    codes = sorted(MATERIAL_CODES.values())
    return np.repeat(np.array(codes, dtype=np.uint8)[None, :], 64, axis=0)


class TestParameters:
    def test_noise_scales_with_dwell(self):
        """§IV: higher dwell time → higher SNR (and higher cost)."""
        fast = SemParameters(dwell_time_us=1.0)
        slow = SemParameters(dwell_time_us=9.0)
        assert slow.noise_sigma == pytest.approx(fast.noise_sigma / 3.0)

    def test_bad_dwell_rejected(self):
        with pytest.raises(ImagingError):
            SemParameters(dwell_time_us=0.0)

    def test_acquisition_cost(self):
        p = SemParameters(dwell_time_us=3.0)
        assert p.acquisition_cost_us(1000) == pytest.approx(3000.0)

    def test_brightness_saturates(self):
        assert SemParameters(accelerating_kv=10.0).brightness == pytest.approx(1.2)


class TestContrast:
    def test_bse_orders_by_atomic_number(self):
        table = contrast_lookup(SemParameters(detector=Detector.BSE))
        w = table[MATERIAL_CODES[Material.TUNGSTEN]]
        cu = table[MATERIAL_CODES[Material.COPPER]]
        si = table[MATERIAL_CODES[Material.SILICON]]
        bg = table[MATERIAL_CODES[Material.DIELECTRIC]]
        assert w > cu > si > bg

    def test_se_collapse_for_unfriendly_process(self):
        """§IV-B: SE lacks contrast on vendor B/C processes."""
        friendly = contrast_separation(SemParameters(detector=Detector.SE, se_friendly_process=True))
        hostile = contrast_separation(SemParameters(detector=Detector.SE, se_friendly_process=False))
        assert hostile < friendly

    def test_bse_immune_to_process(self):
        a = contrast_lookup(SemParameters(detector=Detector.BSE, se_friendly_process=True))
        b = contrast_lookup(SemParameters(detector=Detector.BSE, se_friendly_process=False))
        assert np.allclose(a, b)

    def test_lookup_memoized_per_parameters(self):
        """Equal frozen SemParameters share one cached, read-only table."""
        from repro.imaging.sem import _build_contrast_table

        a = contrast_lookup(SemParameters(dwell_time_us=2.5))
        b = contrast_lookup(SemParameters(dwell_time_us=2.5))
        c = contrast_lookup(SemParameters(dwell_time_us=3.5))
        assert a is b
        assert c is not a
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 0.5
        np.testing.assert_array_equal(a, _build_contrast_table(SemParameters(dwell_time_us=2.5)))


class TestImaging:
    def test_image_range_and_dtype(self):
        img = image_cross_section(_material_strip(), SemParameters(), np.random.default_rng(1))
        assert img.dtype == np.float32
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_requires_uint8(self):
        with pytest.raises(ImagingError):
            image_cross_section(_material_strip().astype(np.int32), SemParameters(), np.random.default_rng(1))

    def test_longer_dwell_improves_snr(self):
        strip = _material_strip()
        rng = np.random.default_rng(7)
        table = contrast_lookup(SemParameters())
        clean = table[strip]
        noisy_fast = image_cross_section(strip, SemParameters(dwell_time_us=1.0), rng)
        noisy_slow = image_cross_section(strip, SemParameters(dwell_time_us=16.0), rng)
        assert snr_estimate(clean, noisy_slow) > snr_estimate(clean, noisy_fast)

    def test_deterministic_with_seeded_rng(self):
        a = image_cross_section(_material_strip(), SemParameters(), np.random.default_rng(3))
        b = image_cross_section(_material_strip(), SemParameters(), np.random.default_rng(3))
        assert np.array_equal(a, b)
