"""Acquisition cost model (§IV economics)."""

import pytest

from repro.errors import ImagingError
from repro.imaging.cost import campaign_cost, reference_campaigns


class TestCampaignCost:
    def test_reference_full_scan_over_24_hours(self):
        """'Each acquisition took more than 24 hours of SEM/FIB' (§IV-B)."""
        cost = reference_campaigns()["full_100um2"]
        assert cost.total_hours == pytest.approx(24.0, abs=4.0)

    def test_reduced_scan_cheaper(self):
        campaigns = reference_campaigns()
        assert campaigns["reduced_30um2"].total_hours < campaigns["full_100um2"].total_hours

    def test_cost_scales_with_area(self):
        small = campaign_cost(10.0, 5.0, 3.0, 10.0)
        large = campaign_cost(90.0, 5.0, 3.0, 10.0)
        assert large.total_hours > 2.5 * small.total_hours

    def test_cost_scales_with_dwell(self):
        """Higher dwell buys SNR at imaging cost (§IV)."""
        fast = campaign_cost(30.0, 5.0, 1.0, 10.0)
        slow = campaign_cost(30.0, 5.0, 6.0, 10.0)
        assert slow.sem_hours == pytest.approx(6 * fast.sem_hours, rel=1e-6)
        assert slow.fib_hours == fast.fib_hours

    def test_finer_pixels_cost_quadratically(self):
        coarse = campaign_cost(30.0, 10.0, 3.0, 10.0)
        fine = campaign_cost(30.0, 5.0, 3.0, 10.0)
        assert fine.sem_hours == pytest.approx(4 * coarse.sem_hours, rel=1e-6)

    def test_thinner_slices_cost_more_overall(self):
        thick = campaign_cost(30.0, 5.0, 3.0, 20.0)
        thin = campaign_cost(30.0, 5.0, 3.0, 10.0)
        assert thin.slices == pytest.approx(2 * thick.slices, rel=0.01)
        assert thin.total_hours > thick.total_hours

    def test_bad_parameters(self):
        with pytest.raises(ImagingError):
            campaign_cost(0.0, 5.0, 3.0, 10.0)
        with pytest.raises(ImagingError):
            campaign_cost(30.0, 5.0, -1.0, 10.0)

    def test_breakdown_sums(self):
        cost = campaign_cost(30.0, 5.0, 3.0, 10.0)
        assert cost.total_hours == pytest.approx(
            cost.sem_hours + cost.fib_hours + cost.overhead_hours
        )
