"""The open-source data bundle writer."""

import json

import pytest

from repro.core.bundle import write_bundle
from repro.core.chips import CHIPS
from repro.layout import read_gds


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    target = tmp_path_factory.mktemp("bundle")
    manifest = write_bundle(target, n_pairs=2)
    return target, manifest


class TestBundle:
    def test_manifest_covers_all_chips(self, bundle):
        _target, manifest = bundle
        assert set(manifest["chips"]) == set(CHIPS)

    def test_files_exist(self, bundle):
        target, manifest = bundle
        for chip_files in manifest["chips"].values():
            for rel in chip_files["files"]:
                assert (target / rel).exists(), rel
        for rel in manifest["tables"]:
            assert (target / rel).exists(), rel
        assert (target / "MANIFEST.json").exists()

    def test_chip_json_round_trips(self, bundle):
        target, _manifest = bundle
        record = json.loads((target / "chips" / "B5" / "B5.json").read_text())
        assert record["topology"] == "ocsa"
        assert record["transistors"]["isolation"]["w_nm"] == pytest.approx(
            CHIPS["B5"].transistors[next(
                k for k in CHIPS["B5"].transistors if k.value == "isolation"
            )].w
        )

    def test_gds_files_readable(self, bundle):
        target, manifest = bundle
        lib = read_gds(target / "chips" / "C4" / "C4.gds")
        assert lib.count() == manifest["chips"]["C4"]["gds_shapes"]

    def test_spice_cards_match_topology(self, bundle):
        target, _manifest = bundle
        classic = (target / "chips" / "C4" / "C4.sp").read_text()
        ocsa = (target / "chips" / "A4" / "A4.sp").read_text()
        assert "PEQ" in classic and "ISO" not in classic
        assert "ISO" in ocsa and "OC" in ocsa

    def test_measurement_samples_present(self, bundle):
        target, _manifest = bundle
        record = json.loads(
            (target / "chips" / "A5" / "A5_measurements.json").read_text()
        )
        assert record["count"] > 100
        assert "nSA" in record["samples"]

    def test_tables_mention_headlines(self, bundle):
        target, _manifest = bundle
        table2 = (target / "tables" / "table2_audit.txt").read_text()
        assert "CoolDRAM" in table2
        fig12 = (target / "tables" / "fig12_models.txt").read_text()
        assert "CROW" in fig12

    def test_provenance_disclosed(self, bundle):
        _target, manifest = bundle
        assert "synthetic" in manifest["provenance"]
