"""DRC and the free-space probes behind I1/I2 (Fig 13)."""

import pytest

from repro.errors import DesignRuleViolation
from repro.layout.cell import LayoutCell
from repro.layout.design_rules import (
    DesignRules,
    check_cell,
    enforce_cell,
    free_track_count,
    occupancy_report,
)
from repro.layout.elements import Layer, Wire
from repro.layout.geometry import Rect

RULES = DesignRules.for_feature_size("test", 18.0)


def _cell_with_wires(*rects, layer=Layer.METAL1) -> LayoutCell:
    cell = LayoutCell("drc")
    for i, r in enumerate(rects):
        cell.add_wire(Wire(f"w{i}", layer, r, f"n{i}"))
    return cell


class TestRules:
    def test_track_pitch(self):
        assert RULES.track_pitch(Layer.METAL1) == pytest.approx(36.0)

    def test_m2_relaxed_vs_m1(self):
        """Appendix A: M2 wires are much bigger than M1 bitlines."""
        assert RULES.min_width[Layer.METAL2] > 3 * RULES.min_width[Layer.METAL1]


class TestChecks:
    def test_clean_cell_passes(self):
        cell = _cell_with_wires(Rect(0, 0, 500, 18), Rect(0, 36, 500, 54))
        assert check_cell(cell, RULES) == []

    def test_width_violation_detected(self):
        cell = _cell_with_wires(Rect(0, 0, 500, 10))  # 10 < 18
        violations = check_cell(cell, RULES)
        assert violations and "width" in violations[0]

    def test_spacing_violation_detected(self):
        cell = _cell_with_wires(Rect(0, 0, 500, 18), Rect(0, 22, 500, 40))  # 4nm gap
        violations = check_cell(cell, RULES)
        assert any("spacing" in v for v in violations)

    def test_touching_same_net_is_legal(self):
        cell = _cell_with_wires(Rect(0, 0, 500, 18), Rect(500, 0, 1000, 18))
        assert check_cell(cell, RULES) == []

    def test_enforce_raises(self):
        cell = _cell_with_wires(Rect(0, 0, 500, 10))
        with pytest.raises(DesignRuleViolation):
            enforce_cell(cell, RULES)


class TestFreeTracks:
    def test_empty_window_has_tracks(self):
        cell = _cell_with_wires(Rect(1000, 0, 1018, 500))  # far away
        window = Rect(0, 0, 180, 500)
        # 180nm window at 36nm pitch: room for several new tracks.
        assert free_track_count(cell, RULES, Layer.METAL1, window) >= 3

    def test_fully_packed_window_has_none(self):
        """The I1/I2 situation: bitlines at minimum pitch leave no room."""
        wires = [Rect(x, 0, x + 18, 500) for x in range(0, 360, 36)]
        cell = _cell_with_wires(*wires)
        window = Rect(0, 0, 360, 500)
        assert free_track_count(cell, RULES, Layer.METAL1, window) == 0

    def test_one_missing_wire_leaves_one_track(self):
        wires = [Rect(x, 0, x + 18, 500) for x in range(0, 360, 36) if x != 144]
        cell = _cell_with_wires(*wires)
        window = Rect(0, 0, 360, 500)
        assert free_track_count(cell, RULES, Layer.METAL1, window) == 1


class TestOccupancyReport:
    def test_packed_report(self):
        wires = [Rect(x, 0, x + 18, 500) for x in range(0, 360, 36)]
        cell = _cell_with_wires(*wires)
        window = Rect(0, 0, 360, 500)
        report = occupancy_report(cell, RULES, Layer.METAL1, window)
        assert report["occupancy"] == pytest.approx(0.5, rel=1e-6)
        assert report["theoretical_max"] == pytest.approx(0.5)
        assert report["utilisation"] == pytest.approx(1.0)
        assert report["free_tracks"] == 0.0


class TestGeneratedRegions:
    def test_generated_mat_has_no_free_bitline_tracks(self):
        """Fig 13a on the generator's MAT edge: I1."""
        from repro.layout import generate_mat_edge

        mat = generate_mat_edge(n_bitlines=8, feature_nm=18.0)
        rules = DesignRules.for_feature_size("mat", 18.0)
        box = mat.bounding_box()
        # Probe across the bitlines (they run along X, pitch along Y —
        # rotate the probe by transposing the window onto Y tracks is not
        # supported, so probe a Y-slice of the X-running wires instead):
        # the occupancy utilisation tells the same story.
        report = occupancy_report(mat, rules, Layer.METAL1, box)
        assert report["utilisation"] > 0.7
        # And no new Y-running track fits anywhere across the wires.
        assert report["free_tracks"] == 0.0
