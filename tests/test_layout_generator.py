"""Ground-truth generator: structure of the produced regions (§V-C)."""

import pytest

from repro.errors import LayoutError
from repro.layout import SaRegionSpec, generate_chip_layout, generate_mat_edge, generate_sa_region
from repro.layout.elements import Layer, Orientation, TransistorKind
from repro.layout.generator import DeviceDims


class TestSpec:
    def test_rejects_unknown_topology(self):
        with pytest.raises(LayoutError):
            SaRegionSpec(topology="folded")

    def test_rejects_zero_pairs(self):
        with pytest.raises(LayoutError):
            SaRegionSpec(n_pairs=0)

    def test_default_dims_match_topology(self):
        classic = SaRegionSpec(topology="classic")
        assert TransistorKind.EQUALIZER in classic.dims
        assert TransistorKind.ISOLATION not in classic.dims
        ocsa = SaRegionSpec(topology="ocsa")
        assert TransistorKind.ISOLATION in ocsa.dims
        assert TransistorKind.OFFSET_CANCEL in ocsa.dims
        assert TransistorKind.EQUALIZER not in ocsa.dims

    def test_bitline_pitch_is_2f(self):
        assert SaRegionSpec(feature_nm=18.0).bitline_pitch == 36.0

    def test_device_dims_validation(self):
        with pytest.raises(LayoutError):
            DeviceDims(w=0, l=10)
        d = DeviceDims(w=100, l=40)
        assert d.eff_w > d.w and d.eff_l > d.l


class TestClassicRegion:
    def test_device_census(self, classic_cell):
        """Per pair: 4 latch + 2 precharge + 1 equalizer + 2 column;
        plus 2 LSA devices per tile."""
        kinds = {k: len(classic_cell.transistors_of_kind(k)) for k in TransistorKind}
        n = 2  # pairs
        assert kinds[TransistorKind.NSA] == 2 * n
        assert kinds[TransistorKind.PSA] == 2 * n
        assert kinds[TransistorKind.PRECHARGE] == 2 * n
        assert kinds[TransistorKind.EQUALIZER] == n
        assert kinds[TransistorKind.COLUMN] == 2 * n
        assert kinds[TransistorKind.LSA] == 4
        assert kinds[TransistorKind.ISOLATION] == 0

    def test_latch_orientation_along_x(self, classic_cell):
        for t in classic_cell.transistors_of_kind(TransistorKind.NSA):
            assert t.orientation is Orientation.WIDTH_ALONG_X

    def test_common_gates_span_region(self, classic_cell):
        """Precharge gates are region-spanning poly rails (§V-C)."""
        box = classic_cell.bounding_box()
        tall_poly = [
            w for w in classic_cell.wires
            if w.layer is Layer.GATE and w.shape.height > 0.6 * box.height
        ]
        assert len(tall_poly) >= 4  # EQ + PRE rails in both tiles

    def test_peq_bridge_exists(self, classic_cell):
        assert classic_cell.wires_of_net("PEQ")

    def test_annotations(self, classic_cell):
        assert classic_cell.annotations["topology"] == "classic"
        assert classic_cell.annotations["n_pairs"] == "2"


class TestOcsaRegion:
    def test_device_census(self, ocsa_cell):
        kinds = {k: len(ocsa_cell.transistors_of_kind(k)) for k in TransistorKind}
        n = 2
        assert kinds[TransistorKind.ISOLATION] == 2 * n
        assert kinds[TransistorKind.OFFSET_CANCEL] == 2 * n
        assert kinds[TransistorKind.EQUALIZER] == 0  # no equalizer in OCSA
        assert kinds[TransistorKind.PRECHARGE] == 2 * n

    def test_internal_nets_exist(self, ocsa_cell):
        nets = ocsa_cell.nets()
        assert "SABL0" in nets and "SABLB0" in nets

    def test_control_nets(self, ocsa_cell):
        nets = ocsa_cell.nets()
        assert {"ISO", "OC", "PRE"} <= nets
        assert "PEQ" not in nets


class TestStackedSas:
    def test_two_stacked_sas_mirrored(self, classic_cell_4):
        """Fig 10: SA1/SA2 between the MATs; odd lanes mirrored along X."""
        cols = classic_cell_4.transistors_of_kind(TransistorKind.COLUMN)
        box = classic_cell_4.bounding_box()
        mid = (box.x0 + box.x1) / 2
        left = [t for t in cols if t.gate.center.x < mid]
        right = [t for t in cols if t.gate.center.x > mid]
        assert len(left) == len(right) == 4

    def test_columns_first_after_mat(self, classic_cell_4):
        """§V-C: column transistors are the first elements a bitline meets."""
        box = classic_cell_4.bounding_box()
        mid = (box.x0 + box.x1) / 2
        for lane in (0, 2):  # left-tile lanes
            lane_devs = [
                t for t in classic_cell_4.transistors
                if t.name.endswith(f"_l{lane}") and t.gate.center.x < mid
            ]
            first = min(lane_devs, key=lambda t: t.gate.center.x)
            assert first.kind is TransistorKind.COLUMN


class TestMatEdge:
    def test_honeycomb_offsets(self):
        mat = generate_mat_edge(n_bitlines=6, n_rows=4, feature_nm=18.0)
        even = [c for c in mat.capacitors if c.row % 2 == 0]
        odd = [c for c in mat.capacitors if c.row % 2 == 1]
        assert even and odd
        even_ys = {c.shape.center.y for c in even}
        odd_ys = {c.shape.center.y for c in odd}
        assert not even_ys & odd_ys  # offset rows (hexagonal packing)

    def test_bitlines_run_full_width(self):
        mat = generate_mat_edge(n_bitlines=4, n_rows=6, feature_nm=18.0)
        box = mat.bounding_box()
        for wire in mat.wires:
            assert wire.shape.width == pytest.approx(box.width, rel=0.05)


class TestChipLayout:
    def test_mat_region_mat_structure(self):
        chip = generate_chip_layout(SaRegionSpec(topology="classic", n_pairs=2))
        assert chip.capacitors  # MATs present
        assert chip.transistors  # SA region present
        assert "mat_width_nm" in chip.annotations

    def test_region_offset_recorded(self):
        chip = generate_chip_layout(SaRegionSpec(topology="ocsa", n_pairs=2))
        offset = float(chip.annotations["region_offset_nm"])
        width = float(chip.annotations["region_width_nm"])
        assert offset > 0 and width > 0


class TestRowDrivers:
    def test_strip_is_narrower_than_sa_region(self, classic_cell):
        from repro.layout.generator import generate_row_driver_strip

        strip = generate_row_driver_strip(feature_nm=18.0)
        assert strip.bounding_box().width < classic_cell.bounding_box().width / 4

    def test_chip_with_row_drivers_has_both_logic_kinds(self):
        chip = generate_chip_layout(
            SaRegionSpec(topology="classic", n_pairs=2),
            mat_rows=6,
            include_row_drivers=True,
        )
        assert float(chip.annotations["row_driver_width_nm"]) > 0
        # Row-driver transistors present alongside SA transistors.
        from repro.layout.elements import TransistorKind

        assert chip.transistors_of_kind(TransistorKind.MAT_ACCESS)
        assert chip.transistors_of_kind(TransistorKind.NSA)

    def test_row_drivers_off_by_default(self):
        chip = generate_chip_layout(SaRegionSpec(topology="classic", n_pairs=2), mat_rows=6)
        assert chip.annotations["row_driver_width_nm"] == "0.0"


class TestSpecValidation:
    """Catalog-facing knob validation (column mux, taps, process overrides)."""

    @pytest.mark.parametrize("kwargs", [
        {"feature_nm": 0.0},
        {"feature_nm": -18.0},
        {"transition_nm": 0.0},
        {"transition_nm": -1.0},
        {"column_mux": 0},
        {"body_tap": "everywhere"},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(LayoutError):
            SaRegionSpec(**kwargs)

    def test_for_generation_presets(self):
        from repro.layout import TRANSITION_NM_BY_GENERATION

        assert SaRegionSpec.for_generation("ddr4").transition_nm == 318.0
        assert SaRegionSpec.for_generation("DDR5").transition_nm == 275.0
        assert set(TRANSITION_NM_BY_GENERATION) == {"ddr4", "ddr5"}

    def test_for_generation_unknown(self):
        with pytest.raises(LayoutError):
            SaRegionSpec.for_generation("ddr6")


class TestColumnMux:
    def test_column_selects_grouped_by_mux(self):
        cell = generate_sa_region(SaRegionSpec(name="mux", n_pairs=4, column_mux=2))
        y_nets = sorted({w.net for w in cell.wires if w.net.startswith("Y")})
        assert y_nets == ["Y0", "Y2"]

    def test_default_mux_shares_one_select(self):
        cell = generate_sa_region(SaRegionSpec(name="mux4", n_pairs=2))
        y_nets = sorted({w.net for w in cell.wires if w.net.startswith("Y")})
        assert y_nets == ["Y0"]


class TestBodyTaps:
    def test_edge_taps_add_vbb_rail(self):
        cell = generate_sa_region(SaRegionSpec(name="tap-e", n_pairs=2, body_tap="edge"))
        assert any(w.net == "VBB" for w in cell.wires)
        assert any(v.net == "VBB" for v in cell.vias)

    def test_lane_taps_add_vbb_contacts(self):
        cell = generate_sa_region(SaRegionSpec(name="tap-l", n_pairs=2, body_tap="lane"))
        assert any(v.net == "VBB" for v in cell.vias)

    def test_no_taps_by_default(self):
        cell = generate_sa_region(SaRegionSpec(name="tap-n", n_pairs=2))
        assert not any(w.net == "VBB" for w in cell.wires)
        assert not any(v.net == "VBB" for v in cell.vias)
