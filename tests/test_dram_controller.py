"""Open-page controller and the I5 performance delta."""

import pytest

from repro.circuits.topologies import SaTopology
from repro.dram import Bank, JEDEC_DDR4, derive_timings
from repro.dram.controller import (
    Controller,
    Request,
    row_hit_stream,
    row_miss_stream,
    throughput_comparison,
)
from repro.errors import EvaluationError


class TestScheduling:
    def test_traces_are_legal(self):
        """The produced traces execute cleanly on an enforcing bank."""
        timings = derive_timings(SaTopology.CLASSIC)
        controller = Controller(timings)
        for stream in (row_hit_stream(16), row_miss_stream(16)):
            result = controller.schedule(stream)
            bank = Bank(topology=SaTopology.CLASSIC, enforce=True, rows=4096)
            bank.execute(result.trace)  # must not raise

    def test_hit_rate_extremes(self):
        controller = Controller(JEDEC_DDR4)
        hits = controller.schedule(row_hit_stream(16))
        misses = controller.schedule(row_miss_stream(16))
        assert hits.hit_rate == pytest.approx(15 / 16)
        assert misses.hit_rate == 0.0

    def test_hits_are_faster_than_misses(self):
        controller = Controller(JEDEC_DDR4)
        assert (
            controller.schedule(row_hit_stream(16)).total_ns
            < controller.schedule(row_miss_stream(16)).total_ns
        )

    def test_reads_valid_on_bank(self):
        timings = derive_timings(SaTopology.OCSA)
        result = Controller(timings).schedule(row_miss_stream(8))
        bank = Bank(topology=SaTopology.OCSA, rows=4096)
        outcome = bank.execute(result.trace)
        assert outcome.clean
        assert all(valid for _t, _row, valid in outcome.reads)

    def test_mean_latency_requires_requests(self):
        result = Controller(JEDEC_DDR4).schedule([])
        with pytest.raises(EvaluationError):
            result.mean_latency_ns()


class TestI5Performance:
    def test_ocsa_timings_slow_row_miss_streams(self):
        """I5's performance impact: the OCSA's longer activation path
        costs throughput on row-miss-heavy workloads."""
        classic = derive_timings(SaTopology.CLASSIC)
        ocsa = derive_timings(SaTopology.OCSA)
        cmp = throughput_comparison(row_miss_stream(32), classic, ocsa)
        assert cmp["slowdown"] > 1.15

    def test_row_hits_hide_the_delta(self):
        """Open rows amortise the activation: hit streams barely differ."""
        classic = derive_timings(SaTopology.CLASSIC)
        ocsa = derive_timings(SaTopology.OCSA)
        cmp = throughput_comparison(row_hit_stream(32), classic, ocsa)
        assert cmp["slowdown"] < 1.1
