"""The §V-A narrative generator."""

import pytest

from repro.reveng.narrative import build_narrative


class TestNarrative:
    def test_seven_steps(self, ocsa_re):
        narrative = build_narrative(ocsa_re)
        assert len(narrative.steps) == 7
        assert [s.number for s in narrative.steps] == list(range(1, 8))

    def test_ocsa_verdict_pinpoints_literature(self, ocsa_re):
        narrative = build_narrative(ocsa_re)
        assert "offset-cancellation" in narrative.verdict
        assert "Kim" in narrative.verdict

    def test_classic_verdict(self, classic_re):
        narrative = build_narrative(classic_re)
        assert "classic" in narrative.verdict

    def test_render_contains_evidence(self, ocsa_re):
        text = build_narrative(ocsa_re).render()
        assert "bitline nets traced" in text
        assert "transistors recovered" in text
        assert "Verdict:" in text
        assert "isolation / offset cancellation" in text

    def test_step_render(self, classic_re):
        step = build_narrative(classic_re).steps[0]
        text = step.render()
        assert text.startswith("(1)")
        assert "METAL1" in text

    def test_device_count_consistency(self, classic_re):
        narrative = build_narrative(classic_re)
        step3 = narrative.steps[2]
        assert f"{len(classic_re.extracted.devices)} transistors recovered" in step3.evidence
