"""Prometheus/OTLP export and the ``ObsServer`` HTTP exposition layer.

Format-exactness tests for :func:`to_prometheus` (cumulative histogram
buckets, ``+Inf``, label sorting/escaping) and :func:`to_otlp`
(deterministic ids, parent links, status codes), plus live-socket tests
of :class:`ObsServer` on an ephemeral port: ``/healthz`` state flip,
``/metrics`` content type, ``/events?since=``, ``/trace`` and 404s.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry
from repro.obs.events import EventBus
from repro.obs.export import ObsServer, parse_metric_key, to_otlp, to_prometheus
from repro.obs.metrics import metric_key
from repro.obs.trace import Span


def _span(name, *, span_id, parent_id=None, start=100.0, dur=1.5,
          status="ok", **attrs):
    return Span(name=name, kind="stage", start_s=start, duration_s=dur,
                span_id=span_id, parent_id=parent_id, pid=7,
                attrs=attrs, status=status)


# ---------------------------------------------------------------------------
# metric key parsing


class TestParseMetricKey:
    def test_round_trips_metric_key(self):
        labels = {"stage": "align", "disposition": "run"}
        key = metric_key("repro_cache_lookups_total", labels)
        assert parse_metric_key(key) == ("repro_cache_lookups_total", labels)

    def test_bare_name(self):
        assert parse_metric_key("repro_campaign_wall_seconds") == (
            "repro_campaign_wall_seconds", {}
        )

    def test_empty_label_set(self):
        assert parse_metric_key("name{}") == ("name", {})


# ---------------------------------------------------------------------------
# Prometheus text exposition


class TestToPrometheus:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("repro_chips_total", outcome="completed").inc(2)
        registry.counter("repro_chips_total", outcome="quarantined").inc()
        registry.gauge("repro_campaign_workers").set(4)
        text = to_prometheus(registry.snapshot())
        lines = text.splitlines()
        assert "# TYPE repro_chips_total counter" in lines
        assert 'repro_chips_total{outcome="completed"} 2' in lines
        assert 'repro_chips_total{outcome="quarantined"} 1' in lines
        assert "# TYPE repro_campaign_workers gauge" in lines
        assert "repro_campaign_workers 4" in lines
        assert text.endswith("\n")

    def test_type_line_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("repro_qc_slices_total", result="pass").inc()
        registry.counter("repro_qc_slices_total", result="fail").inc()
        text = to_prometheus(registry.snapshot())
        assert text.count("# TYPE repro_qc_slices_total counter") == 1

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_stage_seconds",
                                  bounds=(0.1, 1.0, 10.0), stage="align")
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        lines = to_prometheus(registry.snapshot()).splitlines()
        assert "# TYPE repro_stage_seconds histogram" in lines
        # Internal snapshot stores per-bucket counts (1, 2, 1, 1 overflow);
        # the exposition must be cumulative.
        assert 'repro_stage_seconds_bucket{le="0.1",stage="align"} 1' in lines
        assert 'repro_stage_seconds_bucket{le="1",stage="align"} 3' in lines
        assert 'repro_stage_seconds_bucket{le="10",stage="align"} 4' in lines
        assert 'repro_stage_seconds_bucket{le="+Inf",stage="align"} 5' in lines
        assert 'repro_stage_seconds_sum{stage="align"} 56.05' in lines
        assert 'repro_stage_seconds_count{stage="align"} 5' in lines

    def test_labels_sorted_and_escaped(self):
        snapshot = {
            "counters": {
                'weird{z=a "quoted"\\path,a=b}': 3.0,
            },
        }
        lines = to_prometheus(snapshot).splitlines()
        assert lines[0] == "# TYPE weird counter"
        assert lines[1] == 'weird{a="b",z="a \\"quoted\\"\\\\path"} 3'

    def test_whole_floats_render_as_ints(self):
        text = to_prometheus({"gauges": {"g": 3.0, "h": 3.25}})
        lines = text.splitlines()
        assert "g 3" in lines
        assert "h 3.25" in lines

    def test_empty_snapshot(self):
        assert to_prometheus({}) == "\n"


# ---------------------------------------------------------------------------
# OTLP-JSON


class TestToOtlp:
    def test_shape_and_resource(self):
        payload = to_otlp([_span("campaign", span_id="r")])
        assert list(payload) == ["resourceSpans"]
        resource = payload["resourceSpans"][0]
        assert resource["resource"]["attributes"][0] == {
            "key": "service.name", "value": {"stringValue": "repro"},
        }
        scope = resource["scopeSpans"][0]
        assert scope["scope"] == {"name": "repro.obs", "version": "1"}
        assert len(scope["spans"]) == 1

    def test_ids_deterministic_and_linked(self):
        spans = [
            _span("campaign", span_id="root"),
            _span("chip a", span_id="child", parent_id="root"),
        ]
        otlp = to_otlp(spans)["resourceSpans"][0]["scopeSpans"][0]["spans"]
        again = to_otlp(spans)["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert otlp == again  # stable across exports
        root, child = otlp
        assert len(root["traceId"]) == 32
        assert len(root["spanId"]) == 16
        assert root["traceId"] == child["traceId"]
        assert root["parentSpanId"] == ""
        assert child["parentSpanId"] == root["spanId"]
        assert root["spanId"] != child["spanId"]

    def test_timestamps_are_nano_strings(self):
        span = _span("s", span_id="x", start=100.0, dur=1.5)
        otlp = to_otlp([span])["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        assert otlp["startTimeUnixNano"] == str(int(100.0 * 1e9))
        assert otlp["endTimeUnixNano"] == str(int(101.5 * 1e9))

    def test_status_codes(self):
        spans = [
            _span("ok-span", span_id="a"),
            _span("bad-span", span_id="b", status="error"),
        ]
        otlp = to_otlp(spans)["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert otlp[0]["status"] == {"code": 1}
        assert otlp[1]["status"] == {"code": 2}

    def test_attr_typing(self):
        span = _span("s", span_id="x", flag=True, n=3, ratio=0.5, label="hi")
        otlp = to_otlp([span])["resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        attrs = {a["key"]: a["value"] for a in otlp["attributes"]}
        assert attrs["repro.kind"] == {"stringValue": "stage"}
        assert attrs["repro.pid"] == {"intValue": "7"}
        assert attrs["flag"] == {"boolValue": True}
        assert attrs["n"] == {"intValue": "3"}
        assert attrs["ratio"] == {"doubleValue": 0.5}
        assert attrs["label"] == {"stringValue": "hi"}

    def test_empty_span_list(self):
        spans = to_otlp([])["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert spans == []


# ---------------------------------------------------------------------------
# the exposition server


def _get(url: str):
    with urllib.request.urlopen(url, timeout=10.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


@pytest.fixture()
def served():
    """A live ObsServer on an ephemeral port with one of everything."""
    registry = MetricsRegistry()
    registry.counter("repro_chips_total", outcome="completed").inc(2)
    bus = EventBus()
    bus.emit("campaign_start", jobs=2, workers=2)
    bus.emit("campaign_finish", completed=2)
    spans = [_span("campaign", span_id="root"),
             _span("chip a", span_id="c", parent_id="root")]
    with ObsServer(port=0, metrics_fn=registry.snapshot,
                   spans_fn=lambda: spans, bus=bus) as server:
        yield server


class TestObsServer:
    def test_healthz_flips_running_to_done(self, served):
        status, ctype, body = _get(served.url + "/healthz")
        assert status == 200
        assert ctype == "application/json"
        health = json.loads(body)
        assert health == {"status": "ok", "state": "running",
                          "events_seq": 2, "events_dropped": 0}
        served.finish()
        health = json.loads(_get(served.url + "/healthz")[2])
        assert health["state"] == "done"

    def test_metrics_endpoint(self, served):
        status, ctype, body = _get(served.url + "/metrics")
        assert status == 200
        assert ctype == "text/plain; version=0.0.4; charset=utf-8"
        assert b'repro_chips_total{outcome="completed"} 2' in body

    def test_events_endpoint_with_since(self, served):
        status, ctype, body = _get(served.url + "/events")
        assert status == 200
        assert ctype == "application/jsonl"
        kinds = [json.loads(line)["kind"] for line in body.splitlines()]
        assert kinds == ["campaign_start", "campaign_finish"]
        body = _get(served.url + "/events?since=1")[2]
        kinds = [json.loads(line)["kind"] for line in body.splitlines()]
        assert kinds == ["campaign_finish"]
        assert _get(served.url + "/events?since=2")[2] == b""

    def test_trace_endpoint(self, served):
        status, ctype, body = _get(served.url + "/trace")
        assert status == 200
        assert ctype == "application/json"
        spans = json.loads(body)["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert [s["name"] for s in spans] == ["campaign", "chip a"]

    def test_unknown_path_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(served.url + "/nope")
        assert excinfo.value.code == 404

    def test_follow_events_headless(self, served):
        # Generator form, no socket: drains the backlog, then stops once
        # the server is marked done and nothing fresh arrives.
        served.finish()
        lines = list(served.follow_events(-1, timeout_s=5.0))
        assert [json.loads(l)["kind"] for l in lines] == [
            "campaign_start", "campaign_finish",
        ]

    def test_ephemeral_port_bound(self, served):
        assert served.port > 0
        assert served.url == f"http://127.0.0.1:{served.port}"

    def test_server_without_sources(self):
        with ObsServer(port=0) as server:
            assert _get(server.url + "/metrics")[2] == b"\n"
            assert _get(server.url + "/events")[2] == b""
            payload = json.loads(_get(server.url + "/trace")[2])
            spans = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
            assert spans == []
            health = json.loads(_get(server.url + "/healthz")[2])
            assert health == {"status": "ok", "state": "running"}


class TestFollowTermination:
    def test_follow_ends_on_bus_close_while_running(self):
        """A closed bus alone ends the follow stream — even when the
        server has not been marked done (the campaign closes its bus the
        moment the run is over; the healthz flip happens later)."""
        bus = EventBus()
        bus.emit("campaign_start", jobs=1)
        bus.emit("campaign_finish", completed=1)
        with ObsServer(port=0, bus=bus) as server:
            assert json.loads(_get(server.url + "/healthz")[2])["state"] == \
                "running"
            bus.close()
            import time
            t0 = time.perf_counter()
            lines = list(server.follow_events(-1, timeout_s=30.0))
            assert time.perf_counter() - t0 < 5.0
            assert [json.loads(l)["kind"] for l in lines] == [
                "campaign_start", "campaign_finish",
            ]

    def test_finish_rejects_unknown_state(self):
        with ObsServer(port=0) as server:
            with pytest.raises(ValueError, match="finish state"):
                server.finish(state="exploded")
