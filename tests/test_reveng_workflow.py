"""End-to-end reverse-engineering workflows (§V)."""

import pytest

from repro.circuits.topologies import SaTopology
from repro.layout import SaRegionSpec, generate_sa_region
from repro.reveng import reverse_engineer_cell, reverse_engineer_stack


class TestFastPath:
    def test_classic_identified(self, classic_re):
        assert classic_re.topology is SaTopology.CLASSIC
        assert classic_re.lanes_matched == 2
        assert classic_re.all_exact

    def test_ocsa_identified(self, ocsa_re):
        """The paper's headline §V result: A4/A5/B5-style chips deploy the
        offset-cancellation design, not the classic SA."""
        assert ocsa_re.topology is SaTopology.OCSA
        assert ocsa_re.lanes_matched == 2
        assert ocsa_re.all_exact

    def test_validation_attached(self, classic_re):
        assert classic_re.validation is not None

    def test_no_validation_when_disabled(self, classic_cell):
        result = reverse_engineer_cell(classic_cell, validate=False)
        assert result.validation is None

    def test_four_pair_region(self, classic_cell_4):
        result = reverse_engineer_cell(classic_cell_4)
        assert result.topology is SaTopology.CLASSIC
        assert result.lanes_matched == 4
        assert result.all_exact


@pytest.fixture(scope="module")
def full_path_result(ocsa_cell):
    """Simulated acquisition → pipeline → RE on the OCSA region."""
    from repro.imaging import FibSemCampaign, SemParameters, acquire_stack, voxelize

    volume = voxelize(ocsa_cell, voxel_nm=6.0)
    stack = acquire_stack(
        volume,
        FibSemCampaign(slice_thickness_nm=12.0, sem=SemParameters(dwell_time_us=6.0)),
    )
    return reverse_engineer_stack(
        stack,
        origin_x_nm=volume.origin_x_nm,
        origin_y_nm=volume.origin_y_nm,
        truth=ocsa_cell,
    )


class TestFullPath:
    def test_topology_survives_noise_and_drift(self, full_path_result):
        assert full_path_result.topology is SaTopology.OCSA
        assert full_path_result.lanes_matched == 2

    def test_alignment_within_paper_budget(self, full_path_result):
        """§IV-C: residual alignment noise below the 0.77 % budget."""
        assert full_path_result.pipeline_notes["alignment_residual_fraction"] < 0.0077

    def test_all_classes_recovered(self, full_path_result):
        assert full_path_result.validation.complete

    def test_dimensions_recovered(self, full_path_result):
        assert full_path_result.validation.max_relative_error() < 0.35

    def test_pipeline_notes_recorded(self, full_path_result):
        notes = full_path_result.pipeline_notes
        assert notes["slices"] > 50
        assert notes["beam_time_hours"] > 0


class TestConsensusVote:
    def test_majority_vote_across_lanes(self, classic_re):
        """The consensus topology is a majority vote over lane matches."""
        from repro.circuits.matching import MatchResult
        from repro.circuits.topologies import SaTopology

        sig = classic_re.lane_matches[0].signature
        mixed = [
            MatchResult(topology=SaTopology.CLASSIC, exact=True, signature=sig),
            MatchResult(topology=SaTopology.CLASSIC, exact=True, signature=sig),
            MatchResult(topology=SaTopology.OCSA, exact=False, signature=sig),
        ]
        from repro.reveng.workflow import ReversedChip

        probe = ReversedChip(
            extracted=classic_re.extracted,
            classification=classic_re.classification,
            lane_matches=mixed,
            measurements=classic_re.measurements,
        )
        assert probe.topology is SaTopology.CLASSIC
        assert not probe.all_exact

    def _probe(self, classic_re, matches):
        from repro.reveng.workflow import ReversedChip

        return ReversedChip(
            extracted=classic_re.extracted,
            classification=classic_re.classification,
            lane_matches=matches,
            measurements=classic_re.measurements,
        )

    def test_tie_broken_deterministically(self, classic_re):
        """A 1-1 vote must not depend on dict insertion order: with equal
        exact counts the alphabetically-first topology wins, whichever
        lane was matched first."""
        from repro.circuits.matching import MatchResult

        sig = classic_re.lane_matches[0].signature
        ocsa_first = [
            MatchResult(topology=SaTopology.OCSA, exact=True, signature=sig),
            MatchResult(topology=SaTopology.CLASSIC, exact=True, signature=sig),
        ]
        classic_first = list(reversed(ocsa_first))
        assert self._probe(classic_re, ocsa_first).topology is SaTopology.CLASSIC
        assert self._probe(classic_re, classic_first).topology is SaTopology.CLASSIC

    def test_tie_prefers_more_exact_matches(self, classic_re):
        """Between tied vote counts, the topology with more exact (VF2)
        matches wins before the alphabetical fallback."""
        from repro.circuits.matching import MatchResult

        sig = classic_re.lane_matches[0].signature
        mixed = [
            MatchResult(topology=SaTopology.OCSA, exact=True, signature=sig),
            MatchResult(topology=SaTopology.CLASSIC, exact=False, signature=sig),
        ]
        assert self._probe(classic_re, mixed).topology is SaTopology.OCSA

    def test_no_matches_raises(self, classic_re):
        from repro.errors import ReverseEngineeringError
        from repro.reveng.workflow import ReversedChip

        probe = ReversedChip(
            extracted=classic_re.extracted,
            classification=classic_re.classification,
            lane_matches=[],
            measurements=classic_re.measurements,
        )
        with pytest.raises(ReverseEngineeringError):
            _ = probe.topology
        assert not probe.all_exact


class TestPipelineNotes:
    """Both paths populate the common pipeline_notes schema."""

    COMMON = ("devices_extracted", "lanes_matched", "lanes_exact")

    def test_cell_path_notes(self, classic_re):
        for key in self.COMMON:
            assert key in classic_re.pipeline_notes
        assert classic_re.pipeline_notes["pixel_nm"] == 6.0
        assert classic_re.pipeline_notes["lanes_matched"] == 2.0

    def test_stack_path_notes(self, full_path_result):
        for key in self.COMMON:
            assert key in full_path_result.pipeline_notes


class TestMeasuredPitch:
    def test_bitline_pitch_is_the_m1_track_pitch(self, classic_re):
        """The median Y gap across the bitline nets' M1 pieces is the
        region's M1 track pitch — 2F, the 6F² bitline pitch."""
        pitch = classic_re.measurements.bitline_pitch_nm
        assert pitch == pytest.approx(2 * 18.0, rel=0.2)
