"""The six-chip dataset (Table I + §V facts)."""

import pytest

from repro.circuits.topologies import SaTopology
from repro.core.chips import CHIPS, chip, chips_by_generation, chips_by_vendor, total_measurement_count
from repro.errors import UnknownChipError
from repro.layout.elements import TransistorKind


class TestTableI:
    def test_six_chips(self):
        assert len(CHIPS) == 6
        assert set(CHIPS) == {"A4", "B4", "C4", "A5", "B5", "C5"}

    @pytest.mark.parametrize(
        "chip_id,vendor,gen,gbit,year,area,detector,visible,res",
        [
            ("A4", "A", "DDR4", 8, 2017, 34.0, "SE", True, 10.4),
            ("B4", "B", "DDR4", 4, 2022, 48.0, "BSE", False, 3.4),
            ("C4", "C", "DDR4", 8, 2018, 42.0, "BSE", True, 5.0),
            ("A5", "A", "DDR5", 16, 2021, 75.0, "SE", False, 5.2),
            ("B5", "B", "DDR5", 16, 2022, 68.0, "BSE", False, 4.2),
            ("C5", "C", "DDR5", 16, 2022, 66.0, "BSE", True, 5.0),
        ],
    )
    def test_rows_match_the_paper(self, chip_id, vendor, gen, gbit, year, area, detector, visible, res):
        c = chip(chip_id)
        assert c.vendor == vendor
        assert c.generation == gen
        assert c.storage_gbit == gbit
        assert c.year == year
        assert c.die_area_mm2 == area
        assert c.detector == detector
        assert c.mats_visible == visible
        assert c.pixel_resolution_nm == res

    def test_unknown_chip(self):
        with pytest.raises(UnknownChipError):
            chip("D4")


class TestTopologies:
    def test_half_the_chips_deploy_ocsa(self):
        """The paper's central finding (§V-A)."""
        ocsa = [c.chip_id for c in CHIPS.values() if c.topology is SaTopology.OCSA]
        assert sorted(ocsa) == ["A4", "A5", "B5"]

    def test_classic_chips_have_equalizers(self):
        for c in CHIPS.values():
            if c.topology is SaTopology.CLASSIC:
                assert c.has(TransistorKind.EQUALIZER)
                assert not c.has(TransistorKind.ISOLATION)
            else:
                assert not c.has(TransistorKind.EQUALIZER)
                assert c.has(TransistorKind.ISOLATION)
                assert c.has(TransistorKind.OFFSET_CANCEL)

    def test_missing_class_raises(self):
        with pytest.raises(UnknownChipError):
            chip("A4").transistor(TransistorKind.EQUALIZER)


class TestGeometry:
    def test_cells_per_mat_in_paper_range(self):
        """MATs contain 'between half to a million' capacitors (§II-A)."""
        for c in CHIPS.values():
            assert 400_000 <= c.geometry.cells_per_mat <= 1_050_000

    def test_mat_fraction_realistic(self):
        for c in CHIPS.values():
            assert 0.3 < c.mat_area_fraction < 0.75, c.chip_id

    def test_ddr4_mat_fraction_average(self):
        """I1 papers pay ~57 % chip overhead for the MAT extension."""
        ddr4 = chips_by_generation("DDR4")
        avg = sum(c.mat_area_fraction for c in ddr4) / len(ddr4)
        assert avg == pytest.approx(0.57, abs=0.02)

    def test_sa_fraction_much_smaller_than_mat(self):
        for c in CHIPS.values():
            assert c.sa_area_fraction < 0.15
            assert c.sa_area_fraction < c.mat_area_fraction

    def test_sa_height_few_microns(self):
        for c in CHIPS.values():
            assert 2.0 < c.sa_height_um() < 6.0

    def test_ocsa_region_taller_than_classic_for_same_vendor(self):
        """ISO+OC cost more SA height than the single equalizer."""
        a5, c5 = chip("A5"), chip("C5")
        assert a5.sa_height_nm > c5.sa_height_nm

    def test_mats_count_scales_with_density(self):
        assert chip("A5").mats > chip("A4").mats / 2


class TestLookups:
    def test_by_generation(self):
        assert [c.chip_id for c in chips_by_generation("DDR4")] == ["A4", "B4", "C4"]
        assert [c.chip_id for c in chips_by_generation("DDR5")] == ["A5", "B5", "C5"]

    def test_by_vendor(self):
        assert {c.chip_id for c in chips_by_vendor("B")} == {"B4", "B5"}

    def test_measurement_total_near_835(self):
        """The paper reports 835 distinct measurements."""
        assert total_measurement_count() == pytest.approx(835, rel=0.05)
