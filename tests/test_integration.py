"""Cross-module integration tests.

These stitch together subsystems the way downstream users would: dataset →
layout → imaging → pipeline → RE → evaluation, plus the GDSII and analog
hand-offs.
"""

import pytest

from repro.circuits.matching import identify_topology
from repro.circuits.topologies import SaTopology
from repro.core.chips import CHIPS, chip
from repro.catalog import build_region_spec, chip_variant
from repro.core.hifi import netlist_for, sa_sizes_for
from repro.layout import generate_sa_region, read_gds, write_gds
from repro.layout.elements import Layer
from repro.reveng import reverse_engineer_cell


class TestDatasetToLayoutToRe:
    """A chip record → its layout → reverse engineering recovers it."""

    @pytest.mark.parametrize("chip_id", ["A4", "B4", "C4", "A5", "B5", "C5"])
    def test_round_trip(self, chip_id):
        c = chip(chip_id)
        cell = generate_sa_region(build_region_spec(chip_variant(chip_id)))
        result = reverse_engineer_cell(cell)
        assert result.topology is c.topology
        assert result.all_exact
        # The recovered latch dimensions track the chip's records.
        from repro.reveng.classify import TransistorClass
        from repro.layout.elements import TransistorKind

        nsa = result.measurements.stats(TransistorClass.NSA)
        assert nsa.mean_w_nm == pytest.approx(
            c.transistor(TransistorKind.NSA).w, rel=0.25
        )


class TestLayoutToGdsToMasks:
    """GDSII round-trip preserves what the imaging pipeline needs."""

    def test_gds_shapes_rebuild_masks(self, tmp_path, ocsa_cell):
        import numpy as np

        from repro.reveng.features import PlanarFeatures

        path = tmp_path / "region.gds"
        write_gds(ocsa_cell, path)
        lib = read_gds(path)

        truth = PlanarFeatures.from_cell(ocsa_cell, pixel_nm=6.0)
        # Rasterise the GDS shapes and compare coverage per layer.
        box = ocsa_cell.bounding_box()
        for layer in (Layer.METAL1, Layer.GATE):
            mask = np.zeros_like(truth.masks[layer])
            for rect in lib.shapes[layer]:
                i0 = max(0, int((rect.x0 - truth.origin_x_nm) / 6.0))
                i1 = min(mask.shape[0], int(np.ceil((rect.x1 - truth.origin_x_nm) / 6.0)))
                j0 = max(0, int((rect.y0 - truth.origin_y_nm) / 6.0))
                j1 = min(mask.shape[1], int(np.ceil((rect.y1 - truth.origin_y_nm) / 6.0)))
                mask[i0:i1, j0:j1] = True
            agree = (mask == truth.masks[layer]).mean()
            assert agree > 0.97, layer


class TestDatasetToAnalog:
    """Chip measurements drive the analog bench directly."""

    def test_every_chip_senses_correctly_with_its_own_sizes(self):
        from repro.analog import SenseAmpBench, SenseAmpConfig

        for chip_id, c in CHIPS.items():
            bench = SenseAmpBench(
                SenseAmpConfig(topology=c.topology, sizes=sa_sizes_for(chip_id))
            )
            for data in (0, 1):
                out = bench.run(data=data)
                assert out.correct, (chip_id, data)

    def test_netlists_identify_as_their_topology(self):
        for chip_id, c in CHIPS.items():
            match = identify_topology(netlist_for(chip_id))
            assert match.topology is c.topology, chip_id


class TestEvaluationConsistency:
    """The §VI numbers stay internally consistent."""

    def test_overhead_fraction_uses_the_same_areas_as_the_chip(self):
        from repro.core.overheads import paper_overhead_fraction
        from repro.core.papers import paper

        cool = paper("cooldram")
        for c in CHIPS.values():
            assert paper_overhead_fraction(cool, c) == pytest.approx(
                c.mat_plus_sa_fraction
            )

    def test_ocsa_chips_report_isolation_everywhere(self):
        from repro.core.overheads import isolation_eff_length

        for c in CHIPS.values():
            assert isolation_eff_length(c) > 0

    def test_audit_matches_paper_corpus_inaccuracies(self):
        """The recommendation engine reproduces AMBIT's Table II row."""
        from repro.core.papers import paper
        from repro.core.recommendations import ProposalDescription, audit_proposal

        desc = ProposalDescription(
            name="AMBIT", adds_bitlines_in_mat=True, adds_bitlines_in_sa=True
        )
        audited = audit_proposal(desc)
        assert {i.name for i in audited.inaccuracies} == {
            i.name for i in paper("ambit").inaccuracies
        }


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports(self):
        import repro.analog
        import repro.circuits
        import repro.core
        import repro.dram
        import repro.imaging
        import repro.layout
        import repro.pipeline
        import repro.reveng

        for pkg in (
            repro.analog, repro.circuits, repro.core, repro.dram,
            repro.imaging, repro.layout, repro.pipeline, repro.reveng,
        ):
            for name in pkg.__all__:
                assert hasattr(pkg, name), (pkg.__name__, name)
