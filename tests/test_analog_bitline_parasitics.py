"""Appendix A electrical-impact model."""

import pytest
from hypothesis import given, strategies as st

from repro.analog.bitline_parasitics import (
    BitlineGeometry,
    coupling_capacitance_f,
    crosstalk_ratio,
    ground_capacitance_f,
    resistance_ohm,
    settling_time_ns,
    shrink_report,
    transfer_ratio,
)
from repro.errors import AnalogError


class TestGeometry:
    def test_rejects_non_positive(self):
        with pytest.raises(AnalogError):
            BitlineGeometry(width_nm=0)

    def test_shrunk(self):
        g = BitlineGeometry(width_nm=18.0, spacing_nm=18.0)
        s = g.shrunk(0.5)
        assert s.width_nm == 9.0
        assert s.spacing_nm == 18.0  # distance kept by default


class TestElectricals:
    def test_resistance_order_of_magnitude(self):
        """A ~40 µm DRAM bitline runs tens of kΩ — the dominant RC term."""
        r = resistance_ohm(BitlineGeometry())
        assert 1e3 < r < 1e5

    def test_capacitance_order_of_magnitude(self):
        """Total bitline capacitance lands in the tens of fF the SA
        literature (and our testbench) assumes."""
        from repro.analog.bitline_parasitics import total_capacitance_f

        assert 10e-15 < total_capacitance_f(BitlineGeometry()) < 200e-15

    def test_halving_width_doubles_resistance(self):
        g = BitlineGeometry()
        assert resistance_ohm(g.shrunk(0.5)) == pytest.approx(2 * resistance_ohm(g))

    def test_closer_spacing_raises_crosstalk(self):
        """Appendix A: 'making wires closer increases crosstalk'."""
        wide = BitlineGeometry(spacing_nm=36.0)
        tight = BitlineGeometry(spacing_nm=12.0)
        assert crosstalk_ratio(tight) > crosstalk_ratio(wide)

    def test_settling_time_sub_nanosecond_at_nominal(self):
        assert 0.01 < settling_time_ns(BitlineGeometry()) < 5.0

    def test_transfer_ratio_in_range(self):
        assert 0.05 < transfer_ratio(BitlineGeometry()) < 0.5

    @given(st.floats(min_value=6.0, max_value=60.0))
    def test_narrower_is_always_slower(self, width):
        base = BitlineGeometry()
        narrowed = BitlineGeometry(width_nm=width)
        if width < base.width_nm:
            assert settling_time_ns(narrowed) > settling_time_ns(base) * 0.99


class TestShrinkReport:
    def test_halving_report(self):
        report = shrink_report()
        assert report["resistance_factor"] == pytest.approx(2.0)
        # Settling slows: R doubles while C shrinks less than half.
        assert report["settling_factor"] > 1.2
        # The charge-sharing signal improves slightly (less C) — the one
        # upside, which does not rescue the speed loss.
        assert report["transfer_after"] > report["transfer_before"]

    def test_packing_closer_worsens_crosstalk(self):
        report = shrink_report(width_factor=0.5, spacing_factor=0.5)
        assert report["crosstalk_after"] > report["crosstalk_before"]
