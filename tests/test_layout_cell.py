"""LayoutCell container: queries, merging, occupancy."""

import pytest

from repro.errors import LayoutError
from repro.layout.cell import LayoutCell, stack_cells
from repro.layout.elements import (
    ActiveRegion,
    CapacitorCell,
    Layer,
    Orientation,
    Transistor,
    TransistorKind,
    Via,
    Wire,
)
from repro.layout.geometry import Rect


def _simple_cell(name="c") -> LayoutCell:
    cell = LayoutCell(name)
    cell.add_transistor(
        Transistor(
            name="n1", kind=TransistorKind.NSA, channel="nmos", width=100, length=40,
            gate=Rect(0, 0, 10, 50), active=Rect(-5, -5, 15, 55),
            orientation=Orientation.WIDTH_ALONG_X,
        )
    )
    cell.add_wire(Wire("bl", Layer.METAL1, Rect(0, 100, 500, 118), "BL0"))
    cell.add_via(Via("v", Layer.VIA1, Rect(20, 100, 47, 118), "BL0"))
    cell.add_active(ActiveRegion("a", Rect(200, 0, 300, 60)))
    cell.add_capacitor(CapacitorCell("cap", Rect(400, 0, 430, 30)))
    return cell


class TestMutation:
    def test_duplicate_transistor_name_rejected(self):
        cell = _simple_cell()
        with pytest.raises(LayoutError):
            cell.add_transistor(
                Transistor(
                    name="n1", kind=TransistorKind.NSA, channel="nmos",
                    width=10, length=10, gate=Rect(0, 0, 1, 1), active=Rect(0, 0, 2, 2),
                    orientation=Orientation.WIDTH_ALONG_X,
                )
            )

    def test_element_count(self):
        assert _simple_cell().element_count() == 5


class TestQueries:
    def test_bounding_box_covers_everything(self):
        box = _simple_cell().bounding_box()
        assert box.contains_rect(Rect(0, 100, 500, 118))
        assert box.contains_rect(Rect(-5, -5, 15, 55))

    def test_empty_cell_bounding_raises(self):
        with pytest.raises(LayoutError):
            LayoutCell("empty").bounding_box()

    def test_shapes_on_layers(self):
        cell = _simple_cell()
        assert len(cell.shapes_on(Layer.METAL1)) == 1
        assert len(cell.shapes_on(Layer.VIA1)) == 1
        assert len(cell.shapes_on(Layer.GATE)) == 1
        # ACTIVE collects both transistor actives and explicit regions.
        assert len(cell.shapes_on(Layer.ACTIVE)) == 2
        assert len(cell.shapes_on(Layer.CAPACITOR)) == 1

    def test_kind_queries(self):
        cell = _simple_cell()
        assert len(cell.transistors_of_kind(TransistorKind.NSA)) == 1
        assert cell.transistors_of_kind(TransistorKind.PSA) == []
        assert cell.kinds_present() == {TransistorKind.NSA}

    def test_net_queries(self):
        cell = _simple_cell()
        assert cell.nets() == {"BL0"}
        assert len(cell.wires_of_net("BL0")) == 1
        assert cell.wires_of_net("missing") == []

    def test_area_on(self):
        cell = _simple_cell()
        assert cell.area_on(Layer.METAL1) == pytest.approx(500 * 18)


class TestOccupancy:
    def test_occupancy_of_covered_window(self):
        cell = _simple_cell()
        window = Rect(0, 100, 500, 118)
        assert cell.occupancy(Layer.METAL1, window) == pytest.approx(1.0)

    def test_occupancy_clips_to_window(self):
        cell = _simple_cell()
        window = Rect(0, 100, 250, 118)  # half the wire
        assert cell.occupancy(Layer.METAL1, window) == pytest.approx(1.0)
        wide = Rect(0, 90, 500, 128)
        assert cell.occupancy(Layer.METAL1, wide) == pytest.approx(18 / 38, rel=1e-3)

    def test_zero_area_window_rejected(self):
        with pytest.raises(LayoutError):
            _simple_cell().occupancy(Layer.METAL1, Rect(0, 0, 0, 10))


class TestMerge:
    def test_merge_translates_and_prefixes(self):
        a = _simple_cell("a")
        b = _simple_cell("b")
        a.merge(b, dx=1000, dy=0)
        assert a.element_count() == 10
        names = [t.name for t in a.transistors]
        assert "n1" in names and "b/n1" in names
        moved = next(t for t in a.transistors if t.name == "b/n1")
        assert moved.gate.x0 == pytest.approx(1000.0)

    def test_stack_cells_along_x(self):
        a = _simple_cell("a")
        b = _simple_cell("b")
        stacked = stack_cells("s", [a, b], gap=50)
        box_a = a.bounding_box()
        box = stacked.bounding_box()
        assert box.width == pytest.approx(2 * box_a.width + 50)
